#include "service/health.hpp"

#include <sstream>

#include "core/expr/expression_condition.hpp"
#include "obs/metrics.hpp"
#include "service/admin.hpp"
#include "wire/frame.hpp"

namespace rcm::service {
namespace {

constexpr std::chrono::milliseconds kPromAcceptPoll{50};
constexpr std::chrono::milliseconds kPromReadPoll{200};

std::string json_num(double x) {
  std::ostringstream out;
  out.precision(12);
  out << x;
  return out.str();
}

const char* role_name(wire::InstanceRole role) {
  switch (role) {
    case wire::InstanceRole::kStandalone: return "standalone";
    case wire::InstanceRole::kShard: return "shard";
    case wire::InstanceRole::kMerge: return "merge";
  }
  return "unknown";
}

/// The dogfooded cluster verdict rule (also reported in the document so
/// operators can see what "healthy" means).
constexpr const char* kVerdictRule = "cluster_degradations[0] > 0";

/// True iff the compiled verdict rule stays silent on `degradations`.
bool cluster_healthy(std::uint64_t degradations) {
  VariableRegistry vars;
  const VarId var = vars.intern("cluster_degradations");
  ConditionEvaluator ce{
      expr::compile_condition("cluster.unhealthy", kVerdictRule, vars),
      "health"};
  return !ce.on_update(Update{var, 1, static_cast<double>(degradations)})
              .has_value();
}

}  // namespace

// ---- WatchdogAlerts -----------------------------------------------------

WatchdogAlerts::WatchdogAlerts()
    : var_(vars_.intern("watchdog_degradations")),
      ce_(expr::compile_condition("service.watchdog.degraded",
                                  "watchdog_degradations[0] > 0", vars_),
          "watchdog") {}

std::optional<Alert> WatchdogAlerts::on_check(std::size_t degradations) {
  std::lock_guard g{mutex_};
  if (last_count_ && *last_count_ == degradations) return std::nullopt;
  last_count_ = degradations;
  return ce_.on_update(
      Update{var_, static_cast<SeqNo>(++seq_),
             static_cast<double>(degradations)});
}

std::vector<Alert> WatchdogAlerts::emitted() const {
  std::lock_guard g{mutex_};
  return ce_.emitted();
}

// ---- scraping -----------------------------------------------------------

std::optional<wire::InstanceHealth> scrape_instance_health(
    std::uint16_t admin_port, std::chrono::milliseconds timeout) {
  try {
    net::TcpStream conn = net::TcpStream::connect(admin_port);
    AdminRequest req;
    req.command = AdminCommand::kHealth;
    req.scope = HealthScope::kInstance;
    conn.write_all(wire::frame(encode_admin_request(req)));
    wire::FrameCursor cursor;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      auto bytes = conn.read_some(std::chrono::milliseconds{20});
      if (!bytes) continue;
      if (bytes->empty()) return std::nullopt;  // EOF before a response
      cursor.feed(*bytes);
      if (auto payload = cursor.next()) {
        const AdminResponse resp = decode_admin_response(*payload);
        if (!resp.ok || !resp.body) return std::nullopt;
        return wire::decode_instance_health(std::span{
            reinterpret_cast<const std::uint8_t*>(resp.body->data()),
            resp.body->size()});
      }
    }
  } catch (const std::exception&) {
    // connect refused / reset / corrupt bytes: all mean "unreachable".
  }
  return std::nullopt;
}

// ---- JSON rendering -----------------------------------------------------

std::string instance_health_json(const wire::InstanceHealth& h) {
  std::string out = "{\"role\": \"";
  out += role_name(h.role);
  out += "\", \"shard_id\": " + std::to_string(h.shard_id) +
         ", \"epoch\": " + std::to_string(h.epoch) +
         ", \"healthy\": " + (h.healthy ? "true" : "false") +
         ", \"uptime_seconds\": " +
         json_num(static_cast<double>(h.uptime_ns) * 1e-9) +
         ", \"sessions\": " + std::to_string(h.sessions) +
         ", \"max_session_lag\": " + std::to_string(h.max_session_lag) +
         ", \"alert_queue_depth\": " + std::to_string(h.alert_queue_depth) +
         ", \"replicas\": [";
  bool first = true;
  for (const wire::ReplicaHealth& r : h.replicas) {
    if (!first) out += ", ";
    first = false;
    out += "{\"replica\": " + std::to_string(r.replica) +
           ", \"up\": " + (r.up ? "true" : "false") +
           ", \"incarnations\": " + std::to_string(r.incarnations) +
           ", \"heartbeat_age_ms\": " +
           json_num(static_cast<double>(r.heartbeat_age_ns) * 1e-6) +
           ", \"accepted\": " + std::to_string(r.accepted) +
           ", \"wal_records\": " + std::to_string(r.wal_records) + "}";
  }
  out += "], \"rates\": {";
  first = true;
  for (const wire::RateSample& r : h.rates) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + obs::json_escape(r.name) +
           "\": {\"rate_10s\": " + json_num(r.rate_10s) +
           ", \"rate_1m\": " + json_num(r.rate_1m) +
           ", \"rate_5m\": " + json_num(r.rate_5m) + "}";
  }
  out += "}, \"degradations\": [";
  first = true;
  for (const wire::Degradation& d : h.degradations) {
    if (!first) out += ", ";
    first = false;
    out += std::string{"{\"kind\": \""} +
           wire::degradation_kind_name(d.kind) + "\", \"detail\": \"" +
           obs::json_escape(d.detail) +
           "\", \"value\": " + std::to_string(d.value) + "}";
  }
  out += "]}";
  return out;
}

std::string aggregate_health_json(
    std::span<const ScrapedInstance> instances) {
  std::uint64_t degradations = 0;
  std::uint64_t unreachable = 0;
  std::string blocks;
  bool first = true;
  for (const auto& [port, doc] : instances) {
    if (!first) blocks += ", ";
    first = false;
    blocks += "{\"admin_port\": " + std::to_string(port) + ", \"health\": ";
    if (doc) {
      degradations += doc->degradations.size();
      blocks += instance_health_json(*doc);
    } else {
      // A failed scrape is itself a degradation of the cluster.
      ++unreachable;
      ++degradations;
      blocks += "null";
    }
    blocks += "}";
  }
  const bool healthy = cluster_healthy(degradations);
  std::string out = "{\"healthy\": ";
  out += healthy ? "true" : "false";
  out += ", \"instances\": [" + blocks +
         "], \"degradations\": " + std::to_string(degradations) +
         ", \"unreachable\": " + std::to_string(unreachable) +
         ", \"verdict_rule\": \"" + obs::json_escape(kVerdictRule) + "\"}";
  return out;
}

// ---- PromExporter -------------------------------------------------------

PromExporter::PromExporter(std::uint16_t port) : listener_(port) {}

PromExporter::~PromExporter() { stop(); }

void PromExporter::start() {
  std::lock_guard g{lifecycle_mutex_};
  if (running_) return;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread(&PromExporter::serve, this);
  running_ = true;
}

void PromExporter::stop() {
  std::lock_guard g{lifecycle_mutex_};
  if (!running_) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void PromExporter::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = listener_.accept(kPromAcceptPoll);
    if (!conn) continue;
    try {
      // Read until the end of the request head (or give up quietly): the
      // request content is irrelevant — every path serves the registry.
      std::string head;
      for (int i = 0; i < 5 && head.find("\r\n\r\n") == std::string::npos;
           ++i) {
        auto bytes = conn->read_some(kPromReadPoll);
        if (!bytes || bytes->empty()) break;
        head.append(reinterpret_cast<const char*>(bytes->data()),
                    bytes->size());
      }
      const std::string body = obs::registry().snapshot_prometheus();
      std::string resp =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
      conn->write_all(std::span{
          reinterpret_cast<const std::uint8_t*>(resp.data()), resp.size()});
      conn->shutdown_write();
    } catch (const std::exception&) {
      // Peer went away mid-request; keep serving.
    }
  }
}

}  // namespace rcm::service
