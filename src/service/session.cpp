#include "service/session.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "core/expr/expression_condition.hpp"
#include "obs/metrics.hpp"
#include "store/file_log.hpp"

namespace rcm::service {
namespace {

constexpr std::chrono::milliseconds kLoopTick{50};
constexpr std::chrono::milliseconds kStoppingTick{5};

/// Per-sweep outbound batch per session connection: enough to amortize
/// syscalls, small enough that no peer monopolizes the loop.
constexpr std::size_t kBatchBytes = 64u * 1024;

/// A legacy (cursorless) subscriber has no cursor to resume from, so its
/// backpressure bound is bytes buffered; beyond this it is dropped, as
/// the pre-session fan-out dropped peers that stopped reading.
constexpr std::size_t kLegacyMaxBuffered = 4u * 1024 * 1024;

constexpr double kLagBounds[] = {0, 1, 8, 64, 512, 4096, 32768};

std::string lag_source(std::uint64_t budget) {
  std::ostringstream out;
  out << "session_lag[0] > " << budget;
  return out.str();
}

std::string read_file_bytes(const std::filesystem::path& path,
                            std::vector<std::uint8_t>& bytes) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return {};
  bytes.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  if (in.bad()) return "read error on " + path.string();
  return {};
}

}  // namespace

SessionManager::SessionManager(std::filesystem::path data_dir,
                               wire::AlertEncoding encoding,
                               SessionLimits limits)
    : data_dir_(std::move(data_dir)), encoding_(encoding), limits_(limits) {
  // A session is evicted before its unsent backlog outruns the window,
  // so anything a live session still needs is always replayable.
  limits_.retention =
      std::max({limits_.retention, limits_.max_backlog + 1, std::size_t{1}});
  std::filesystem::create_directories(data_dir_);

  const auto log_path = data_dir_ / "alerts.log";
  const auto cursor_path = data_dir_ / "cursors.log";

  // Recover the durable alert log; the in-memory window re-encodes the
  // replayable suffix in the subscriber wire encoding.
  store::RecoveredLog recovered = store::recover_log(log_path);
  end_ = recovered.log.size();
  const std::uint64_t base =
      end_ > limits_.retention ? end_ - limits_.retention : 0;
  for (std::uint64_t i = base; i < end_; ++i)
    window_.push_back(wire::encode_alert(recovered.log.at(i), encoding_));

  log_out_.open(log_path, std::ios::binary | std::ios::app);
  if (!log_out_.is_open())
    throw std::runtime_error("SessionManager: cannot open " +
                             log_path.string());
  std::error_code ec;
  if (std::filesystem::file_size(log_path, ec) == 0 && !ec) {
    const auto framed = wire::frame(store::encode_log_header(
        store::kAlertLogFormatId, store::kLogFormatVersion));
    log_out_.write(reinterpret_cast<const char*>(framed.data()),
                   static_cast<std::streamsize>(framed.size()));
    log_out_.flush();
  }

  // Recover durable cursors (throws wire::UnsupportedVersion on a
  // future-major file — never silently misread) and compact the file.
  std::vector<std::uint8_t> cursor_bytes;
  const std::string err = read_file_bytes(cursor_path, cursor_bytes);
  if (!err.empty()) throw std::runtime_error("SessionManager: " + err);
  const wire::RecoveredCursors cursors =
      wire::recover_cursor_bytes(cursor_bytes);
  for (const auto& [id, entry] : cursors.cursors) {
    Session s;
    s.cursor = entry;
    s.cursor.acked = std::min(s.cursor.acked, end_);
    s.framed = s.cursor.acked;
    sessions_.emplace(id, std::move(s));
  }
  recovered_sessions_ = sessions_.size();
  compact_cursors_locked();

  if (limits_.lag_alert_budget > 0) {
    lag_var_ = lag_vars_.intern("session_lag");
    lag_ce_.emplace(
        expr::compile_condition("service.session.lag_exceeded",
                                lag_source(limits_.lag_alert_budget),
                                lag_vars_),
        "sessions");
  }

  loop_thread_ = std::thread(&SessionManager::loop, this);
}

SessionManager::~SessionManager() {
  try {
    stop(std::chrono::milliseconds{200});
  } catch (...) {
  }
}

// ---- durable pieces ----------------------------------------------------

void SessionManager::append_durable_locked(const Alert& a) {
  wire::Writer payload;
  payload.u8(store::kAlertRecord);
  payload.raw(wire::encode_alert(a, wire::AlertEncoding::kFullHistories));
  const auto framed = wire::frame(payload.bytes());
  log_out_.write(reinterpret_cast<const char*>(framed.data()),
                 static_cast<std::streamsize>(framed.size()));
  log_out_.flush();
  if (!log_out_.good())
    throw std::runtime_error("SessionManager: alert log write failed");
}

void SessionManager::write_cursor_locked(const std::string& id) {
  const Session& s = sessions_.at(id);
  const auto framed = wire::frame(wire::encode_cursor_record(id, s.cursor));
  cursor_out_.write(reinterpret_cast<const char*>(framed.data()),
                    static_cast<std::streamsize>(framed.size()));
  cursor_out_.flush();
  if (!cursor_out_.good())
    throw std::runtime_error("SessionManager: cursor write failed");
  // Bound file growth: when the record count dwarfs the session count,
  // rewrite the file as header + one record per session.
  if (++cursor_records_ > 4 * sessions_.size() + 64)
    compact_cursors_locked();
}

void SessionManager::compact_cursors_locked() {
  const auto path = data_dir_ / "cursors.log";
  const auto tmp = data_dir_ / "cursors.log.tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out.is_open())
      throw std::runtime_error("SessionManager: cannot open " + tmp.string());
    const auto write_framed = [&](const std::vector<std::uint8_t>& payload) {
      const auto framed = wire::frame(payload);
      out.write(reinterpret_cast<const char*>(framed.data()),
                static_cast<std::streamsize>(framed.size()));
    };
    write_framed(wire::encode_cursor_file_header());
    for (const auto& [id, s] : sessions_)
      write_framed(wire::encode_cursor_record(id, s.cursor));
    out.flush();
    if (!out.good())
      throw std::runtime_error("SessionManager: cursor compaction failed");
  }
  std::filesystem::rename(tmp, path);
  cursor_out_.close();
  cursor_out_.open(path, std::ios::binary | std::ios::app);
  if (!cursor_out_.is_open())
    throw std::runtime_error("SessionManager: cannot reopen " +
                             path.string());
  cursor_records_ = 0;
}

// ---- publish (AD thread) -----------------------------------------------

void SessionManager::publish(const Alert& a) {
  std::lock_guard g{mutex_};
  append_durable_locked(a);
  window_.push_back(wire::encode_alert(a, encoding_));
  ++end_;
  while (window_.size() > limits_.retention) window_.pop_front();
  published_.fetch_add(1, std::memory_order_relaxed);

  // Legacy conns get the live frame appended directly (byte-identical to
  // the cursorless protocol); a peer that stopped reading is dropped
  // once its buffered bytes pass the cap, as the old fan-out dropped
  // peers whose sockets errored.
  const auto framed = wire::frame(window_.back());
  for (Conn& conn : conns_) {
    if (!conn.legacy || conn.closing) continue;
    if (conn.out.size() - conn.out_off + framed.size() >
        kLegacyMaxBuffered) {
      conn.out.clear();
      conn.out_off = 0;
      conn.closing = true;
      RCM_COUNT("service.subscribers.dropped");
      continue;
    }
    conn.out.insert(conn.out.end(), framed.begin(), framed.end());
  }

  // Lag is re-evaluated against the new log end for every session; the
  // dogfooded CE fires once per excursion above the budget.
  for (auto& [id, session] : sessions_) check_lag_locked(id, session);
  wake_.wake();
}

void SessionManager::check_lag_locked(const std::string& id,
                                      Session& session) {
  if (!lag_ce_) return;
  const std::uint64_t lag = end_ - session.cursor.acked;
  if (lag > limits_.lag_alert_budget) {
    if (session.lag_alerted) return;
    session.lag_alerted = true;
    Update u;
    u.var = lag_var_;
    u.seqno = static_cast<SeqNo>(++lag_seq_);
    u.value = static_cast<double>(lag);
    if (auto alert = lag_ce_->on_update(u)) {
      lag_alerts_.push_back(std::move(*alert));
      RCM_COUNT("service.session.lag_alerts");
    }
  } else {
    session.lag_alerted = false;
  }
}

// ---- event loop --------------------------------------------------------

void SessionManager::adopt(net::TcpStream stream) {
  stream.set_nonblocking(true);
  std::lock_guard g{mutex_};
  if (stopping_.load(std::memory_order_acquire)) return;  // closes stream
  pending_.emplace_back(std::move(stream));
  RCM_COUNT("service.subscribers.connected");
  wake_.wake();
}

void SessionManager::fill_conn_locked(Conn& conn) {
  if (conn.legacy || conn.closing || conn.session.empty()) return;
  if (conn.next_index < window_base_locked()) {
    // The retention window outran this connection's send cursor (it can
    // only happen when the peer stalled past the backlog bound).
    evict_locked(conn, end_ - sessions_.at(conn.session).cursor.acked);
    return;
  }
  while (conn.out.size() - conn.out_off < kBatchBytes &&
         conn.next_index < end_) {
    const auto& encoded =
        window_[static_cast<std::size_t>(conn.next_index -
                                         window_base_locked())];
    const auto framed =
        wire::frame(wire::encode_session_alert(conn.next_index, encoded));
    conn.out.insert(conn.out.end(), framed.begin(), framed.end());
    conn.frame_ends.emplace_back(conn.out.size(), conn.next_index);
    ++conn.next_index;
  }
  if (end_ - conn.next_index > limits_.max_backlog)
    evict_locked(conn, end_ - sessions_.at(conn.session).cursor.acked);
}

void SessionManager::evict_locked(Conn& conn, std::uint64_t lag) {
  Session& s = sessions_.at(conn.session);
  s.cursor.evicted = true;
  s.conn = nullptr;  // conn.session stays set so framed-progress lands
  write_cursor_locked(conn.session);
  const auto framed =
      wire::frame(wire::encode_session_evicted(conn.next_index, lag));
  conn.out.insert(conn.out.end(), framed.begin(), framed.end());
  conn.closing = true;
  RCM_COUNT("service.session.evicted");
  RCM_OBSERVE_WITH("service.session.lag",
                   (kLagBounds, std::end(kLagBounds)), lag);
}

void SessionManager::note_progress_locked(Conn& conn) {
  while (!conn.frame_ends.empty() &&
         conn.frame_ends.front().first <= conn.out_off) {
    const std::uint64_t index = conn.frame_ends.front().second;
    conn.frame_ends.pop_front();
    if (conn.session.empty()) continue;
    Session& s = sessions_.at(conn.session);
    s.framed = std::max(s.framed, index + 1);
  }
}

void SessionManager::handle_hello_locked(Conn& conn,
                                         const wire::SessionHello& hello) {
  auto [it, fresh] = sessions_.try_emplace(hello.session_id);
  Session& s = it->second;
  if (s.conn != nullptr) {
    // Duplicate session id: the latest connection wins; the superseded
    // one is flushed and closed, detached from the session.
    Conn* old = s.conn;
    old->session.clear();
    old->closing = true;
    s.conn = nullptr;
    RCM_COUNT("service.session.superseded");
  }

  wire::SessionWelcome welcome;
  welcome.log_end = end_;
  const std::uint64_t base = window_base_locked();
  const bool has_from = hello.from.has_value();
  const std::uint64_t wanted =
      has_from ? *hello.from : (fresh ? end_ : s.cursor.acked);
  if (wanted > end_) {
    welcome.status = wire::SessionWelcomeStatus::kBadCursor;
    welcome.start_index = end_;
  } else if (wanted < base) {
    welcome.status = wire::SessionWelcomeStatus::kTruncated;
    welcome.lost_from = wanted;
    welcome.lost_to = base;
    welcome.start_index = base;
  } else {
    welcome.start_index = wanted;
  }
  // A truncation is an acknowledged loss: the cursor advances past the
  // named range so the session stops lagging on entries it can never
  // receive. An exact resume leaves the cursor to client acks.
  if (welcome.status == wire::SessionWelcomeStatus::kTruncated) {
    s.cursor.acked = std::max(s.cursor.acked, welcome.start_index);
    RCM_COUNT("service.session.truncated");
  }
  const bool dirty = s.cursor.evicted ||
                     welcome.status == wire::SessionWelcomeStatus::kTruncated;
  s.cursor.evicted = false;
  s.lag_alerted = false;

  conn.legacy = false;
  conn.session = it->first;
  conn.next_index = welcome.start_index;
  s.conn = &conn;
  if (dirty || fresh) write_cursor_locked(it->first);

  const auto framed = wire::frame(encode_session_welcome(welcome));
  conn.out.insert(conn.out.end(), framed.begin(), framed.end());
  RCM_COUNT(fresh ? "service.session.connected" : "service.session.resumed");
}

void SessionManager::handle_readable_locked(Conn& conn) {
  const auto data = conn.stream.read_available();
  if (!data) return;  // spurious readiness
  if (data->empty()) {
    // Peer FIN. A half-closing subscriber may still be reading; flush
    // what it is owed, then close.
    conn.closing = true;
    return;
  }
  conn.in.feed(*data);
  while (auto payload = conn.in.next()) {
    try {
      if (conn.legacy) {
        handle_hello_locked(conn, wire::decode_session_hello(*payload));
      } else {
        const std::uint64_t upto = wire::decode_session_ack(*payload);
        if (conn.session.empty()) continue;  // superseded mid-flight
        Session& s = sessions_.at(conn.session);
        const std::uint64_t acked =
            std::min(std::max(s.cursor.acked, upto), end_);
        if (acked != s.cursor.acked) {
          s.cursor.acked = acked;
          write_cursor_locked(conn.session);
          RCM_COUNT("service.session.acks");
          RCM_OBSERVE_WITH("service.session.lag",
                           (kLagBounds, std::end(kLagBounds)), end_ - acked);
        }
      }
    } catch (const wire::DecodeError&) {
      // Garbage on the control channel (includes a future-major hello):
      // the connection is not salvageable.
      conn.out.clear();
      conn.out_off = 0;
      conn.frame_ends.clear();
      conn.closing = true;
      RCM_COUNT("service.session.bad_frames");
      return;
    }
  }
}

void SessionManager::drop_conn_locked(std::list<Conn>::iterator it) {
  note_progress_locked(*it);
  if (!it->session.empty()) {
    auto sit = sessions_.find(it->session);
    if (sit != sessions_.end() && sit->second.conn == &*it)
      sit->second.conn = nullptr;
  }
  RCM_COUNT("service.subscribers.dropped");
  conns_.erase(it);
}

void SessionManager::loop() {
  std::vector<pollfd> fds;
  std::vector<std::list<Conn>::iterator> fd_conns;
  while (true) {
    last_tick_ns_.store(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count()),
        std::memory_order_relaxed);
    bool all_flushed = true;
    {
      std::lock_guard g{mutex_};
      conns_.splice(conns_.end(), pending_);
      fds.clear();
      fd_conns.clear();
      fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
      for (auto it = conns_.begin(); it != conns_.end(); ++it) {
        fill_conn_locked(*it);
        const bool pending_out = it->out_off < it->out.size();
        if (pending_out) all_flushed = false;
        short events = POLLIN;
        if (pending_out) events |= POLLOUT;
        fds.push_back(pollfd{it->stream.native_handle(), events, 0});
        fd_conns.push_back(it);
      }
    }
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping &&
        (all_flushed ||
         std::chrono::steady_clock::now() >= flush_deadline_))
      break;

    const auto tick = stopping ? kStoppingTick : kLoopTick;
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(tick.count()));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: give up

    std::lock_guard g{mutex_};
    if (fds[0].revents & POLLIN) wake_.drain();
    for (std::size_t i = 0; i < fd_conns.size(); ++i) {
      const auto it = fd_conns[i];
      const short revents = fds[i + 1].revents;
      try {
        if (revents & (POLLIN | POLLHUP | POLLERR))
          handle_readable_locked(*it);
        if (it->out_off < it->out.size() &&
            (revents & (POLLOUT | POLLHUP | POLLERR) || stopping)) {
          const std::span<const std::uint8_t> rest{
              it->out.data() + it->out_off, it->out.size() - it->out_off};
          it->out_off += it->stream.write_some(rest);
          note_progress_locked(*it);
        }
      } catch (const std::system_error&) {
        drop_conn_locked(it);
        continue;
      }
      if (it->out_off == it->out.size()) {
        it->out.clear();
        it->out_off = 0;
        if (it->closing) {
          it->stream.shutdown_write();
          drop_conn_locked(it);
        }
      }
    }
  }

  std::lock_guard g{mutex_};
  conns_.splice(conns_.end(), pending_);
  for (Conn& conn : conns_) {
    try {
      conn.stream.shutdown_write();
    } catch (const std::system_error&) {
    }
  }
  conns_.clear();
}

void SessionManager::stop(std::chrono::milliseconds flush_deadline) {
  {
    std::lock_guard g{stop_mutex_};
    if (stopped_) return;
    stopped_ = true;
  }
  flush_deadline_ = std::chrono::steady_clock::now() + flush_deadline;
  stopping_.store(true, std::memory_order_release);
  wake_.wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

// ---- introspection -----------------------------------------------------

std::vector<SessionInfo> SessionManager::sessions() const {
  std::lock_guard g{mutex_};
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    SessionInfo info;
    info.id = id;
    info.acked = s.cursor.acked;
    info.framed = s.framed;
    info.lag = end_ - s.cursor.acked;
    info.backlog = s.conn != nullptr ? end_ - s.conn->next_index : 0;
    info.connected = s.conn != nullptr;
    info.evicted = s.cursor.evicted;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t SessionManager::connections() const {
  std::lock_guard g{mutex_};
  return conns_.size() + pending_.size();
}

std::uint64_t SessionManager::log_end() const {
  std::lock_guard g{mutex_};
  return end_;
}

std::uint64_t SessionManager::published() const noexcept {
  return published_.load(std::memory_order_relaxed);
}

std::vector<Alert> SessionManager::lag_alerts() const {
  std::lock_guard g{mutex_};
  return lag_alerts_;
}

}  // namespace rcm::service
