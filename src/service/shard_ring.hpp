// Consistent-hash ring partitioning VarId-space across shard ids.
//
// Each shard contributes `vnodes` tokens to a 64-bit ring; a variable is
// owned by the shard whose token is the first one at or after hash(var),
// wrapping around. Tokens come from a splitmix64-style integer mix, so
// placement is a pure function of (shard id, vnode index, var id) — no
// std::hash, no endianness, no platform dependence. That determinism is
// load-bearing: feeders, shards, and the fuzz oracle all derive the same
// ownership from the same shard map.
//
// Adding or removing a shard only moves the ranges adjacent to its
// tokens (classic consistent hashing), which keeps handoff — a targeted
// crash-recovery per moved variable — proportional to 1/N of the key
// space instead of a full reshuffle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/condition.hpp"
#include "core/types.hpp"

namespace rcm::service {

/// Default vnodes per shard. 32 tokens keeps the per-shard load within a
/// few percent of uniform for small clusters (pinned by shard_ring_test).
inline constexpr unsigned kDefaultVnodes = 32;

class ShardRing {
 public:
  explicit ShardRing(unsigned vnodes = kDefaultVnodes);

  /// Adds a shard's tokens. Adding an existing id is a no-op.
  void add_shard(std::uint32_t shard_id);

  /// Removes a shard's tokens. Removing an absent id is a no-op.
  void remove_shard(std::uint32_t shard_id);

  [[nodiscard]] bool contains(std::uint32_t shard_id) const;

  /// Shard ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> shards() const;

  /// Owner of a variable. Precondition: at least one shard.
  [[nodiscard]] std::uint32_t owner(VarId var) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool empty() const { return shards_.empty(); }
  [[nodiscard]] unsigned vnodes() const { return vnodes_; }

  /// splitmix64 finalizer — the mix behind both token and key placement.
  /// Exposed so tests can pin cross-platform determinism to known values.
  [[nodiscard]] static std::uint64_t mix64(std::uint64_t x);

 private:
  struct Token {
    std::uint64_t point;
    std::uint32_t shard;
  };

  unsigned vnodes_;
  std::vector<Token> ring_;  // sorted by (point, shard)
  std::vector<std::uint32_t> shards_;  // sorted, unique
};

/// The slice of a multi-variable condition a single shard hosts: the base
/// condition restricted to the shard's owned variables. A partial shard
/// never evaluates the global predicate — evaluate() is constantly false
/// and the global verdict is produced by the merge tier, which sees every
/// variable. What the partial condition does provide is admission: the
/// shard's CE accepts (journals, checkpoints, forwards) exactly the owned
/// variables' updates at their base degrees, and rejects misrouted vars.
///
/// Aggressive triggering regardless of the base class: admission must not
/// stall on gaps (loss is the merge filter's problem, not the router's).
/// An empty owned set is valid (a shard that owns none of the condition's
/// variables accepts nothing).
class PartialCondition final : public Condition {
 public:
  /// `owned` must be an ascending, duplicate-free subset of
  /// base->variables(); throws std::invalid_argument otherwise.
  PartialCondition(ConditionPtr base, std::vector<VarId> owned);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  ConditionPtr base_;
  std::vector<VarId> owned_;
  std::string name_;
};

/// Convenience: the subset of `condition`'s variables that `ring` assigns
/// to `shard_id`, ascending.
[[nodiscard]] std::vector<VarId> owned_variables(const ShardRing& ring,
                                                 const Condition& condition,
                                                 std::uint32_t shard_id);

}  // namespace rcm::service
