// Framed admin protocol for the alert service: status, replica
// kill/restart, checkpoint trigger, drain.
//
// One TCP connection carries any number of request/response exchanges;
// each message is one CRC frame (wire/frame.hpp) holding:
//
//   request  := cmd:u8 | varint(replica)          (replica is 0 unless
//              | [extension section]               the command targets one)
//   response := status:u8 ('O' ok / 'E' error)
//               | string(error)                    (empty when ok)
//               | u8(has_status)
//               | service-status                   (when has_status = 1)
//               | u8(has_body)
//               | string(body)                     (when has_body = 1)
//               | [extension section]              (only when non-empty)
//
// `body` carries bulk text payloads: the live metrics snapshot
// (kMetrics) and the Chrome trace JSON (kTraceDump).
//
// The codec is symmetric and exhaustive so rcm_service_client, the
// tests, and the fuzz harness all speak exactly the same bytes.
//
// Mixed-version stance (docs/SERVICE.md, "Format versioning & rolling
// upgrades"): a rolling fleet upgrade briefly runs two versions side by
// side, so "unknown command = decode error" is no longer acceptable.
// Requests since v2 carry the sender's protocol version as a skippable
// extension (kAdminVersionExtTag). A server receiving an unknown
// command from a peer that declared a compatible major answers with a
// structured `unsupported` reply naming its own version range and
// highest known command — the connection survives and the caller can
// downgrade its request. Version-less requests (v1 peers) keep the
// legacy contract: unknown commands are decode errors, answered as an
// error reply by the dispatcher. A declared major outside the supported
// range raises wire::UnsupportedVersion.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "wire/version.hpp"

namespace rcm::service {

/// Admin protocol version spoken by this binary; v1 is the pre-extension
/// protocol (no version tag on requests, no response extensions). 2.1
/// added kSessions and the per-session status response extension; 2.2
/// added kShardMap and the shard identity status extension; 2.3 added
/// kHealth/kMetricsProm and the request scope extension.
inline constexpr wire::VersionHeader kAdminVersion{2, 3};
inline constexpr std::uint8_t kAdminMinMajor = 1;
inline constexpr std::uint8_t kAdminMaxMajor = 2;

/// Extension tags used by the admin codec.
inline constexpr std::uint8_t kAdminVersionExtTag = 0x56;      // 'V'
inline constexpr std::uint8_t kAdminUnsupportedExtTag = 0x55;  // 'U'
inline constexpr std::uint8_t kAdminSessionsExtTag = 0x53;     // 'S'
inline constexpr std::uint8_t kAdminShardExtTag = 0x48;        // 'H'
inline constexpr std::uint8_t kAdminScopeExtTag = 0x43;        // 'C'

/// Admin commands, in wire order.
enum class AdminCommand : std::uint8_t {
  kStatus = 0,      ///< report ServiceStatus
  kKill = 1,        ///< crash replica `replica` (loses volatile state)
  kRestart = 2,     ///< restart replica `replica` now, skipping backoff
  kCheckpoint = 3,  ///< ask replica `replica` to checkpoint (async)
  kDrain = 4,       ///< request graceful shutdown of the whole service
  kMetrics = 5,     ///< live obs::registry().snapshot_json() in `body`
  kTraceDump = 6,   ///< Chrome trace_event JSON export in `body`
  kSessions = 7,    ///< per-session cursor/lag/backlog JSON in `body`
  kShardMap = 8,    ///< versioned wire::ShardMap bytes in `body`
  kHealth = 9,      ///< cluster health JSON in `body` (see scope)
  kMetricsProm = 10, ///< Prometheus text exposition in `body`
};

/// Breadth of a kHealth request. A cluster-scoped request makes the
/// serving instance scrape every peer and aggregate; an instance-scoped
/// request returns only the serving instance's own document. The
/// aggregator fans out instance-scoped requests, so scraping can never
/// recurse.
enum class HealthScope : std::uint8_t {
  kCluster = 0,
  kInstance = 1,
};

/// One admin request.
struct AdminRequest {
  AdminCommand command = AdminCommand::kStatus;
  std::uint64_t replica = 0;  ///< target for kKill/kRestart/kCheckpoint
  /// False when the wire held a command this binary does not know but
  /// the peer declared a compatible version; `raw_command` then holds
  /// the wire byte and `command` is meaningless.
  bool known = true;
  std::uint8_t raw_command = 0;  ///< the command byte as received/sent
  /// The sender's declared protocol version; {1, 0} when the request
  /// carried no version extension (a v1 peer).
  wire::VersionHeader version{1, 0};
  /// kHealth breadth; rides a skippable extension (2.3+). Decoders that
  /// predate it see a plain request and serve their widest scope, which
  /// is safe: they also predate aggregation, so they cannot recurse.
  HealthScope scope = HealthScope::kCluster;
};

/// Lifecycle state of one replica slot.
enum class ReplicaState : std::uint8_t {
  kRunning = 0,
  kDown = 1,  ///< killed/crashed; supervisor restart may be pending
};

/// Per-replica slice of a status report.
struct ReplicaStatus {
  ReplicaState state = ReplicaState::kRunning;
  std::uint16_t port = 0;          ///< UDP ingest port (stable across restarts)
  std::uint64_t incarnation = 0;   ///< 1-based; incarnation-1 = restarts
  std::uint64_t accepted = 0;      ///< updates accepted by live incarnation
  std::uint64_t wal_records = 0;   ///< WAL records since last checkpoint
  std::uint64_t checkpoints = 0;   ///< checkpoints taken by live incarnation
  std::uint64_t recovered_wal = 0; ///< WAL records replayed at last recovery
};

/// Per-session slice of a status report (rides a skippable response
/// extension so v1/v2.0 clients keep decoding plain status responses).
struct SessionStatus {
  std::string id;
  std::uint64_t acked = 0;    ///< durable cursor: entries [0, acked) acked
  std::uint64_t framed = 0;   ///< entries fully written to a peer socket
  std::uint64_t lag = 0;      ///< alert-log end − acked
  std::uint64_t backlog = 0;  ///< entries not yet handed to the kernel
  bool connected = false;
  bool evicted = false;
};

/// Shard identity of a sharded service instance (rides a skippable
/// response extension; absent from unsharded services and pre-2.2
/// servers). `owned` is the ascending set of condition variables this
/// shard currently serves — bounded in the encoding, with `total_owned`
/// always reporting the real count.
struct ShardStatus {
  std::uint32_t shard_id = 0;
  std::uint64_t epoch = 0;  ///< shard-map epoch the instance serves
  std::vector<VarId> owned;
  std::uint64_t total_owned = 0;
};

/// Whole-service status report.
struct ServiceStatus {
  std::uint64_t ingested_datagrams = 0;
  std::uint64_t displayed = 0;    ///< alerts passed by the AD filter
  std::uint64_t subscribers = 0;  ///< live alert subscriber connections
  std::uint64_t dm_ends = 0;      ///< distinct DM END markers seen
  /// CE receive loops that gave up waiting for END markers (process-wide
  /// obs counter `net.ce.end_timeouts`; 0 under -DRCM_NO_METRICS).
  std::uint64_t end_timeouts = 0;
  std::vector<ReplicaStatus> replicas;
  /// Per-session cursors (2.1+ servers; empty from older ones). The
  /// extension payload is bounded, so a huge fleet is truncated to the
  /// `total_sessions` highest-lag entries that fit — never silently:
  /// total_sessions always reports the real count.
  std::vector<SessionStatus> sessions;
  std::uint64_t total_sessions = 0;
  /// Shard identity (2.2+ sharded servers only).
  std::optional<ShardStatus> shard;
};

/// Structured "I don't speak that" reply block: the server's version
/// and the envelope of what it accepts, so a newer client can downgrade
/// instead of treating the error as fatal.
struct AdminUnsupported {
  std::uint8_t command = 0;  ///< the rejected command byte
  wire::VersionHeader server_version{1, 0};
  std::uint8_t min_major = 1;    ///< majors the server accepts
  std::uint8_t max_major = 1;
  std::uint8_t max_command = 0;  ///< highest command byte the server knows
};

/// One admin response. `status` is present for kStatus requests; `body`
/// for kMetrics (JSON metrics snapshot) and kTraceDump (Chrome trace
/// JSON); `unsupported` when the server rejected the command or version.
struct AdminResponse {
  bool ok = true;
  std::string error;  ///< non-empty iff !ok
  std::optional<ServiceStatus> status;
  std::optional<std::string> body;
  std::optional<AdminUnsupported> unsupported;
};

/// Encodes a request at kAdminVersion (the version rides as a skippable
/// extension, so v1 servers reject it cleanly and v2+ servers can tell
/// a versioned peer from a legacy one).
[[nodiscard]] std::vector<std::uint8_t> encode_admin_request(
    const AdminRequest& req);
/// Decodes a request. An unknown command from a version-declaring peer
/// with a compatible major yields `known == false` (no throw); a
/// declared major outside [kAdminMinMajor, kAdminMaxMajor] throws
/// wire::UnsupportedVersion; an unknown command from a version-less
/// (v1) peer throws wire::DecodeError, as v1 always did.
[[nodiscard]] AdminRequest decode_admin_request(
    std::span<const std::uint8_t> payload);

/// Encodes a response. Responses without extension content are
/// byte-identical to v1 so legacy clients keep decoding them.
[[nodiscard]] std::vector<std::uint8_t> encode_admin_response(
    const AdminResponse& resp);
/// Throws wire::DecodeError on malformed input; skips unknown response
/// extensions.
[[nodiscard]] AdminResponse decode_admin_response(
    std::span<const std::uint8_t> payload);

}  // namespace rcm::service
