// Framed admin protocol for the alert service: status, replica
// kill/restart, checkpoint trigger, drain.
//
// One TCP connection carries any number of request/response exchanges;
// each message is one CRC frame (wire/frame.hpp) holding:
//
//   request  := cmd:u8 | varint(replica)          (replica is 0 unless
//                                                  the command targets one)
//   response := status:u8 ('O' ok / 'E' error)
//               | string(error)                    (empty when ok)
//               | u8(has_status)
//               | service-status                   (when has_status = 1)
//               | u8(has_body)
//               | string(body)                     (when has_body = 1)
//
// `body` carries bulk text payloads: the live metrics snapshot
// (kMetrics) and the Chrome trace JSON (kTraceDump).
//
// The codec is symmetric and exhaustive so rcm_service_client, the
// tests, and the fuzz harness all speak exactly the same bytes.
// Unknown commands are decode errors by design (see docs/SERVICE.md,
// "Admin protocol"): there is exactly one deployed version at a time.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rcm::service {

/// Admin commands, in wire order.
enum class AdminCommand : std::uint8_t {
  kStatus = 0,      ///< report ServiceStatus
  kKill = 1,        ///< crash replica `replica` (loses volatile state)
  kRestart = 2,     ///< restart replica `replica` now, skipping backoff
  kCheckpoint = 3,  ///< ask replica `replica` to checkpoint (async)
  kDrain = 4,       ///< request graceful shutdown of the whole service
  kMetrics = 5,     ///< live obs::registry().snapshot_json() in `body`
  kTraceDump = 6,   ///< Chrome trace_event JSON export in `body`
};

/// One admin request.
struct AdminRequest {
  AdminCommand command = AdminCommand::kStatus;
  std::uint64_t replica = 0;  ///< target for kKill/kRestart/kCheckpoint
};

/// Lifecycle state of one replica slot.
enum class ReplicaState : std::uint8_t {
  kRunning = 0,
  kDown = 1,  ///< killed/crashed; supervisor restart may be pending
};

/// Per-replica slice of a status report.
struct ReplicaStatus {
  ReplicaState state = ReplicaState::kRunning;
  std::uint16_t port = 0;          ///< UDP ingest port (stable across restarts)
  std::uint64_t incarnation = 0;   ///< 1-based; incarnation-1 = restarts
  std::uint64_t accepted = 0;      ///< updates accepted by live incarnation
  std::uint64_t wal_records = 0;   ///< WAL records since last checkpoint
  std::uint64_t checkpoints = 0;   ///< checkpoints taken by live incarnation
  std::uint64_t recovered_wal = 0; ///< WAL records replayed at last recovery
};

/// Whole-service status report.
struct ServiceStatus {
  std::uint64_t ingested_datagrams = 0;
  std::uint64_t displayed = 0;    ///< alerts passed by the AD filter
  std::uint64_t subscribers = 0;  ///< live alert subscriber connections
  std::uint64_t dm_ends = 0;      ///< distinct DM END markers seen
  /// CE receive loops that gave up waiting for END markers (process-wide
  /// obs counter `net.ce.end_timeouts`; 0 under -DRCM_NO_METRICS).
  std::uint64_t end_timeouts = 0;
  std::vector<ReplicaStatus> replicas;
};

/// One admin response. `status` is present for kStatus requests; `body`
/// for kMetrics (JSON metrics snapshot) and kTraceDump (Chrome trace
/// JSON).
struct AdminResponse {
  bool ok = true;
  std::string error;  ///< non-empty iff !ok
  std::optional<ServiceStatus> status;
  std::optional<std::string> body;
};

[[nodiscard]] std::vector<std::uint8_t> encode_admin_request(
    const AdminRequest& req);
/// Throws wire::DecodeError on malformed input (including unknown
/// commands — the protocol has no forward-compat story yet).
[[nodiscard]] AdminRequest decode_admin_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_admin_response(
    const AdminResponse& resp);
/// Throws wire::DecodeError on malformed input.
[[nodiscard]] AdminResponse decode_admin_response(
    std::span<const std::uint8_t> payload);

}  // namespace rcm::service
