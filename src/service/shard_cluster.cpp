#include "service/shard_cluster.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/file_log.hpp"
#include "wire/frame.hpp"

namespace rcm::service {

namespace {

// Per-(shard, replica) durable state pulled out of a stopped instance:
// exactly what a HandoffPacket carries, for every owned variable.
struct ExtractedState {
  std::map<VarId, wire::HandoffEntry> vars;
};

// Offline crash-recovery of a stopped replica, then per-variable window
// extraction. The DurableReplica constructor does the heavy lifting
// (checkpoint + WAL replay, torn-tail tolerant); we only read the
// recovered evaluator state back out. `condition` must be the condition
// the files were written under — the snapshot codec pins its variable
// set and degrees.
ExtractedState extract_state(const ConditionPtr& condition,
                             const std::filesystem::path& dir,
                             std::size_t replica, std::size_t checkpoint_every,
                             bool record_journal) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = checkpoint_every;
  opts.record_journal = record_journal;
  DurableReplica rep{condition, replica, opts};

  ExtractedState out;
  const ConditionEvaluator& ce = rep.evaluator();
  for (VarId v : condition->variables()) {
    wire::HandoffEntry entry;
    entry.var = v;
    if (ce.histories().contains(v)) {
      const History& h = ce.histories().of(v);
      for (int i = -(static_cast<int>(h.size()) - 1); i <= 0; ++i)
        entry.window.push_back(h.at(i));  // oldest first
    }
    const auto wm = ce.last_seen().find(v);
    entry.watermark = wm != ce.last_seen().end() ? wm->second : kNoSeqNo;
    if (entry.watermark == kNoSeqNo && entry.window.empty()) continue;
    out.vars.emplace(v, std::move(entry));
  }
  return out;
}

// Rebuilds replica `replica`'s durable files in `dir` from per-variable
// windows: delete the checkpoint (its variable set no longer matches the
// condition the next incarnation runs), truncate the WAL, and write the
// windows var-by-var. Cold recovery (no checkpoint + WAL replay) then
// reconstructs histories and watermarks exactly — replaying a window
// after the journal's stale prefix is idempotent by the paper's
// out-of-order discard rule. Received windows additionally append to the
// never-truncated journal (minus what it already holds), keeping
// T(journal) aligned with the live state the new incarnation starts from.
void rewrite_replica_state(const std::filesystem::path& dir,
                           std::size_t replica,
                           const std::vector<wire::HandoffEntry>& retained,
                           const std::vector<wire::HandoffEntry>& received,
                           bool record_journal) {
  std::error_code ec;
  std::filesystem::remove(DurableReplica::checkpoint_path(dir, replica), ec);

  store::FileUpdateLog wal{DurableReplica::wal_path(dir, replica)};
  wal.truncate();
  for (const auto* group : {&retained, &received})
    for (const wire::HandoffEntry& e : *group)
      for (const Update& u : e.window) wal.append(u);

  if (!record_journal || received.empty()) return;
  std::map<VarId, SeqNo> journaled;
  for (const Update& u : DurableReplica::read_journal(dir, replica))
    journaled[u.var] = std::max(journaled[u.var], u.seqno);
  store::FileUpdateLog journal{DurableReplica::journal_path(dir, replica)};
  for (const wire::HandoffEntry& e : received) {
    const auto it = journaled.find(e.var);
    const SeqNo floor = it != journaled.end() ? it->second : kNoSeqNo;
    for (const Update& u : e.window)
      if (u.seqno > floor) journal.append(u);
  }
}

}  // namespace

ShardedCluster::ShardedCluster(ShardClusterConfig config)
    : config_(std::move(config)), ring_(config_.vnodes) {
  if (!config_.condition)
    throw std::invalid_argument("ShardedCluster: condition required");
  if (config_.num_shards == 0)
    throw std::invalid_argument("ShardedCluster: num_shards == 0");
  if (config_.data_dir.empty())
    throw std::invalid_argument("ShardedCluster: data_dir required");
  std::filesystem::create_directories(config_.data_dir);

  for (std::uint32_t id = 0; id < config_.num_shards; ++id)
    ring_.add_shard(id);

  if (cross_shard()) {
    ServiceConfig mc;
    mc.condition = config_.condition;
    mc.num_replicas = config_.merge_replicas;
    mc.filter = config_.filter;
    mc.data_dir = config_.data_dir / "merge";
    mc.checkpoint_every = config_.checkpoint_every;
    mc.record_journal = config_.record_journal;
    mc.auto_restart = config_.auto_restart;
    mc.backoff = config_.backoff;
    mc.poll_interval = config_.poll_interval;
    mc.watchdog_enabled = config_.watchdog_enabled;
    mc.watchdog = config_.watchdog;
    mc.shard = ShardIdentity{kMergeShardId, epoch_};
    mc.health_endpoints_provider = [this] {
      std::lock_guard g{map_mutex_};
      return cached_health_endpoints_;
    };
    merge_ = std::make_unique<AlertService>(std::move(mc));
    merge_ports_ = merge_->replica_ports();
    forward_socket_ = std::make_unique<net::UdpSocket>();
  }

  std::lock_guard g{mutex_};
  for (std::uint32_t id = 0; id < config_.num_shards; ++id) {
    ShardSlot slot;
    slot.shard_id = id;
    slot.dir = config_.data_dir / ("shard-" + std::to_string(id));
    all_shard_dirs_.emplace(id, slot.dir);
    build_shard_locked(slot);
    shards_.emplace(id, std::move(slot));
  }
  refresh_map_locked();
}

ShardedCluster::~ShardedCluster() {
  try {
    drain();
  } catch (...) {
  }
}

bool ShardedCluster::cross_shard() const noexcept {
  return config_.condition->variables().size() > 1;
}

ConditionPtr ShardedCluster::condition_for_locked(
    std::uint32_t shard_id) const {
  if (!cross_shard()) {
    // Single-variable condition: the owning shard evaluates for real;
    // everyone else admits nothing.
    const VarId v = config_.condition->variables().front();
    if (ring_.owner(v) == shard_id) return config_.condition;
    return std::make_shared<PartialCondition>(config_.condition,
                                              std::vector<VarId>{});
  }
  return std::make_shared<PartialCondition>(
      config_.condition, owned_variables(ring_, *config_.condition, shard_id));
}

FilterKind ShardedCluster::filter_for_locked(std::uint32_t shard_id) const {
  if (!cross_shard()) {
    const VarId v = config_.condition->variables().front();
    if (ring_.owner(v) == shard_id) return config_.filter;
  }
  // Partial shards never raise (PartialCondition::evaluate is false);
  // kPassAll keeps their displayer a no-op without requiring the
  // single-variable shape AD-2/AD-4 insist on.
  return FilterKind::kPassAll;
}

void ShardedCluster::build_shard_locked(ShardSlot& slot) {
  ServiceConfig sc;
  sc.condition = condition_for_locked(slot.shard_id);
  sc.num_replicas = config_.replicas_per_shard;
  sc.filter = filter_for_locked(slot.shard_id);
  sc.data_dir = slot.dir;
  sc.checkpoint_every = config_.checkpoint_every;
  sc.record_journal = config_.record_journal;
  sc.auto_restart = config_.auto_restart;
  sc.backoff = config_.backoff;
  sc.poll_interval = config_.poll_interval;
  sc.watchdog_enabled = config_.watchdog_enabled;
  sc.watchdog = config_.watchdog;
  sc.shard = ShardIdentity{slot.shard_id, epoch_};
  sc.shard_map_provider = [this] {
    std::lock_guard g{map_mutex_};
    return cached_map_;
  };
  sc.health_endpoints_provider = [this] {
    std::lock_guard g{map_mutex_};
    return cached_health_endpoints_;
  };
  if (cross_shard()) {
    // Forward every accepted update to the merge tier, tagged with the
    // origin shard + epoch. Runs on the replica worker thread; send
    // failures are the lossy link the merge CE already tolerates.
    const std::uint32_t id = slot.shard_id;
    const std::uint64_t epoch = epoch_;
    sc.on_accept = [this, id, epoch](const Update& u) {
      // The outbound half of the cross-shard hop; the merge tier's
      // worker records the matching merge.ingest span.
      RCM_SCOPED_TIMER(timer, "service.shard.forward.seconds");
      RCM_TRACE_SPAN(span, "shard.forward");
      span.var(u.var).seq(static_cast<std::int64_t>(u.seqno));
      const auto bytes = wire::encode_update_from_shard(u, id, epoch);
      const auto framed = wire::frame(bytes);
      for (const std::uint16_t port : merge_ports_) {
        try {
          forward_socket_->send_to(port, framed);
        } catch (...) {
        }
      }
    };
  }
  slot.service = std::make_unique<AlertService>(std::move(sc));
  slot.ports = slot.service->replica_ports();
}

void ShardedCluster::retire_shard_locked(ShardSlot& slot, bool evaluating) {
  if (!slot.service) return;
  slot.service->drain();
  if (evaluating) {
    const std::vector<Alert> d = slot.service->displayed();
    const std::vector<AlertProvenance> p = slot.service->provenance();
    retired_epochs_.push_back(d.size());
    retired_displayed_.insert(retired_displayed_.end(), d.begin(), d.end());
    retired_provenance_.insert(retired_provenance_.end(), p.begin(), p.end());
  }
  slot.service.reset();
}

void ShardedCluster::reshard_locked(const ShardRing& new_ring,
                                    std::uint64_t new_epoch) {
  const std::vector<VarId>& vars = config_.condition->variables();

  // Which variables move, and which shards are touched.
  std::map<VarId, std::pair<std::uint32_t, std::uint32_t>> moves;  // old, new
  std::set<std::uint32_t> affected;
  for (VarId v : vars) {
    const std::uint32_t before = ring_.owner(v);
    const std::uint32_t after = new_ring.owner(v);
    if (before == after) continue;
    moves.emplace(v, std::make_pair(before, after));
    affected.insert(before);
    affected.insert(after);
  }
  for (std::uint32_t id : new_ring.shards())
    if (!ring_.contains(id)) affected.insert(id);  // brand-new shard
  for (std::uint32_t id : ring_.shards())
    if (!new_ring.contains(id)) affected.insert(id);  // departing shard

  // Phase 1: stop every affected live instance (graceful — final
  // checkpoint, WAL compacted) so its durable state is quiescent. The
  // evaluating shard (single-variable clusters) is identified up front:
  // retiring it closes a displayer epoch.
  std::optional<std::uint32_t> evaluating_id;
  if (!cross_shard()) evaluating_id = ring_.owner(vars.front());
  for (std::uint32_t id : affected) {
    const auto it = shards_.find(id);
    if (it != shards_.end())
      retire_shard_locked(it->second, evaluating_id == id);
  }

  // Phase 2: offline-extract the full per-variable state of every shard
  // that owns a moving variable or keeps variables on a rebuilt
  // instance. Keyed by (shard, replica).
  std::map<std::pair<std::uint32_t, std::size_t>, ExtractedState> extracted;
  for (std::uint32_t id : affected) {
    const auto dir_it = all_shard_dirs_.find(id);
    if (dir_it == all_shard_dirs_.end()) continue;  // brand-new shard
    const ConditionPtr old_condition = condition_for_locked(id);
    if (old_condition->variables().empty()) continue;
    for (std::size_t r = 0; r < config_.replicas_per_shard; ++r)
      extracted.emplace(
          std::make_pair(id, r),
          extract_state(old_condition, dir_it->second, r,
                        config_.checkpoint_every, config_.record_journal));
  }

  // Phase 3: build one HandoffPacket per (from, to, replica) and
  // round-trip it through the versioned codec — the wire format is the
  // handoff, not an afterthought of it.
  std::map<std::pair<std::uint32_t, std::size_t>,
           std::vector<wire::HandoffEntry>>
      received;  // keyed by (to, replica)
  for (std::size_t r = 0; r < config_.replicas_per_shard; ++r) {
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             wire::HandoffPacket>
        packets;  // keyed by (from, to)
    for (const auto& [v, fromto] : moves) {
      const auto ext = extracted.find({fromto.first, r});
      if (ext == extracted.end()) continue;
      const auto entry = ext->second.vars.find(v);
      if (entry == ext->second.vars.end()) continue;  // nothing accepted
      wire::HandoffPacket& pkt = packets[fromto];
      pkt.epoch = new_epoch;
      pkt.from = fromto.first;
      pkt.to = fromto.second;
      pkt.replica = static_cast<std::uint32_t>(r);
      pkt.entries.push_back(entry->second);
    }
    for (auto& [fromto, pkt] : packets) {
      const wire::HandoffPacket decoded =
          wire::decode_handoff(wire::encode_handoff(pkt));
      auto& sink = received[{decoded.to, decoded.replica}];
      sink.insert(sink.end(), decoded.entries.begin(), decoded.entries.end());
    }
  }

  // Phase 4: adopt the new layout.
  ring_ = new_ring;
  epoch_ = new_epoch;
  for (auto it = shards_.begin(); it != shards_.end();) {
    if (!ring_.contains(it->first))
      it = shards_.erase(it);  // dir + journals stay (all_shard_dirs_)
    else
      ++it;
  }

  // Phase 5: rewrite durable state and rebuild every affected shard that
  // survives into the new layout.
  for (std::uint32_t id : affected) {
    if (!ring_.contains(id)) continue;
    auto slot_it = shards_.find(id);
    if (slot_it == shards_.end()) {
      ShardSlot slot;
      slot.shard_id = id;
      slot.dir = config_.data_dir / ("shard-" + std::to_string(id));
      all_shard_dirs_.emplace(id, slot.dir);
      slot_it = shards_.emplace(id, std::move(slot)).first;
    }
    ShardSlot& slot = slot_it->second;
    const ConditionPtr new_condition = condition_for_locked(id);
    std::set<VarId> keeps(new_condition->variables().begin(),
                          new_condition->variables().end());
    for (std::size_t r = 0; r < config_.replicas_per_shard; ++r) {
      std::vector<wire::HandoffEntry> retained;
      const auto ext = extracted.find({id, r});
      if (ext != extracted.end())
        for (const auto& [v, entry] : ext->second.vars)
          if (keeps.contains(v)) retained.push_back(entry);
      std::vector<wire::HandoffEntry> incoming;
      const auto rcv = received.find({id, r});
      if (rcv != received.end()) incoming = rcv->second;
      std::filesystem::create_directories(slot.dir);
      rewrite_replica_state(slot.dir, r, retained, incoming,
                            config_.record_journal);
    }
    build_shard_locked(slot);
  }
  refresh_map_locked();
}

void ShardedCluster::add_shard(std::uint32_t shard_id) {
  std::lock_guard g{mutex_};
  if (ring_.contains(shard_id))
    throw std::invalid_argument("add_shard: id already present");
  ShardRing next = ring_;
  next.add_shard(shard_id);
  reshard_locked(next, epoch_ + 1);
}

void ShardedCluster::remove_shard(std::uint32_t shard_id) {
  std::lock_guard g{mutex_};
  if (!ring_.contains(shard_id))
    throw std::invalid_argument("remove_shard: unknown shard");
  if (ring_.shard_count() == 1)
    throw std::invalid_argument("remove_shard: last shard");
  ShardRing next = ring_;
  next.remove_shard(shard_id);
  reshard_locked(next, epoch_ + 1);
}

std::uint64_t ShardedCluster::epoch() const {
  std::lock_guard g{mutex_};
  return epoch_;
}

std::vector<std::uint32_t> ShardedCluster::shard_ids() const {
  std::lock_guard g{mutex_};
  return ring_.shards();
}

wire::ShardMap ShardedCluster::shard_map_locked() const {
  wire::ShardMap map;
  map.epoch = epoch_;
  for (const auto& [id, slot] : shards_) {
    wire::ShardMapEntry entry;
    entry.shard_id = id;
    entry.vnodes = ring_.vnodes();
    entry.replica_ports = slot.ports;
    map.shards.push_back(std::move(entry));
  }
  return map;
}

void ShardedCluster::refresh_map_locked() {
  wire::ShardMap map = shard_map_locked();
  std::vector<std::uint16_t> endpoints;
  for (const auto& [id, slot] : shards_)
    if (slot.service) endpoints.push_back(slot.service->admin_port());
  if (merge_) endpoints.push_back(merge_->admin_port());
  std::lock_guard g{map_mutex_};
  cached_map_ = std::move(map);
  cached_health_endpoints_ = std::move(endpoints);
}

wire::ShardMap ShardedCluster::shard_map() const {
  std::lock_guard g{mutex_};
  return shard_map_locked();
}

std::uint32_t ShardedCluster::owner(VarId var) const {
  std::lock_guard g{mutex_};
  return ring_.owner(var);
}

AlertService& ShardedCluster::shard(std::uint32_t shard_id) {
  std::lock_guard g{mutex_};
  const auto it = shards_.find(shard_id);
  if (it == shards_.end() || !it->second.service)
    throw std::invalid_argument("shard: unknown shard id");
  return *it->second.service;
}

AlertService* ShardedCluster::merge() { return merge_.get(); }

AlertService& ShardedCluster::evaluating_service_locked() {
  if (merge_) return *merge_;
  const VarId v = config_.condition->variables().front();
  return *shards_.at(ring_.owner(v)).service;
}

const AlertService& ShardedCluster::evaluating_service_locked() const {
  if (merge_) return *merge_;
  const VarId v = config_.condition->variables().front();
  return *shards_.at(ring_.owner(v)).service;
}

AlertService& ShardedCluster::evaluating_service() {
  std::lock_guard g{mutex_};
  return evaluating_service_locked();
}

void ShardedCluster::drain() {
  std::lock_guard g{mutex_};
  if (drained_) return;
  // Shards first so their final accepted updates are forwarded while the
  // merge tier still ingests; then the merge tier itself.
  for (auto& [id, slot] : shards_)
    if (slot.service) slot.service->drain();
  if (merge_) merge_->drain();
  drained_ = true;
}

bool ShardedCluster::drain_requested() const {
  std::lock_guard g{mutex_};
  for (const auto& [id, slot] : shards_)
    if (slot.service && slot.service->drain_requested()) return true;
  return merge_ && merge_->drain_requested();
}

bool ShardedCluster::await_idle(std::chrono::milliseconds idle,
                                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const auto remaining = [&] {
    return std::max(std::chrono::milliseconds{1},
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now()));
  };
  std::lock_guard g{mutex_};
  for (auto& [id, slot] : shards_)
    if (slot.service && !slot.service->await_idle(idle, remaining()))
      return false;
  return !merge_ || merge_->await_idle(idle, remaining());
}

std::vector<Alert> ShardedCluster::displayed() const {
  std::lock_guard g{mutex_};
  std::vector<Alert> out = retired_displayed_;
  const std::vector<Alert> live = evaluating_service_locked().displayed();
  out.insert(out.end(), live.begin(), live.end());
  return out;
}

std::vector<AlertProvenance> ShardedCluster::provenance() const {
  std::lock_guard g{mutex_};
  std::vector<AlertProvenance> out = retired_provenance_;
  const std::vector<AlertProvenance> live =
      evaluating_service_locked().provenance();
  out.insert(out.end(), live.begin(), live.end());
  return out;
}

std::vector<std::size_t> ShardedCluster::displayer_epochs() const {
  std::lock_guard g{mutex_};
  std::vector<std::size_t> epochs = retired_epochs_;
  epochs.push_back(evaluating_service_locked().displayed().size());
  return epochs;
}

std::vector<std::vector<Update>> ShardedCluster::journals() const {
  std::lock_guard g{mutex_};
  std::vector<std::vector<Update>> out;
  for (const auto& [id, dir] : all_shard_dirs_)
    for (std::size_t r = 0; r < config_.replicas_per_shard; ++r)
      out.push_back(DurableReplica::read_journal(dir, r));
  if (merge_)
    for (std::size_t r = 0; r < config_.merge_replicas; ++r)
      out.push_back(
          DurableReplica::read_journal(config_.data_dir / "merge", r));
  return out;
}

}  // namespace rcm::service
