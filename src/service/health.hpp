// Cluster-wide health: the stall-watchdog policy, the dogfooded
// "service is degraded" alert channel, the per-instance → cluster
// health-document aggregator, and the Prometheus /metrics exporter.
//
// The shape follows FoundationDB's `status json`: every instance can
// answer an instance-scoped admin kHealth request with its own versioned
// wire::InstanceHealth document; any instance can answer a
// cluster-scoped one by scraping every peer (including itself — served
// directly, not over TCP, so aggregation can never deadlock on the
// instance's own admin socket) and merging the documents into one JSON
// cluster document with a top-level healthy verdict.
//
// Dogfooding: the healthy/unhealthy verdict and the watchdog's degraded
// alert both run through expr::compile_condition + ConditionEvaluator —
// the same machinery the service monitors for its users (probe.hpp set
// the pattern).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "net/socket.hpp"
#include "wire/health.hpp"

namespace rcm::service {

/// Budgets the stall watchdog enforces. A heartbeat older than its
/// budget, or a WAL-append p99 above its budget, becomes a typed
/// wire::Degradation in the instance's health document.
struct WatchdogOptions {
  /// Replica-worker heartbeat: beaten every receive-poll iteration, so
  /// the budget must comfortably exceed ServiceConfig::poll_interval.
  std::chrono::milliseconds worker_heartbeat_budget{2000};
  /// Session event-loop tick budget (loop ticks at kLoopTick when idle).
  std::chrono::milliseconds session_tick_budget{2000};
  /// AD thread: only judged when the alert queue is non-empty (an idle
  /// AD blocks in pop() by design and is healthy).
  std::chrono::milliseconds ad_queue_budget{2000};
  /// WAL-append p99 budget, seconds ("excessive flush latency").
  double wal_p99_budget = 0.25;
};

/// Dogfooded watchdog alert channel: degradation counts are fed as
/// updates into a condition-language CE running
///
///   service.watchdog.degraded:  watchdog_degradations[0] > 0
///
/// so "the monitor's own process is stalling" is itself an rcm alert.
/// Edge-triggered: a check is fed only when its degradation count
/// changed, so a persistent stall raises one alert, not one per tick.
class WatchdogAlerts {
 public:
  WatchdogAlerts();

  /// Feeds one watchdog check result. Returns the alert raised by the
  /// CE, if any. Thread-safe.
  std::optional<Alert> on_check(std::size_t degradations);

  /// Alerts raised so far.
  [[nodiscard]] std::vector<Alert> emitted() const;

 private:
  mutable std::mutex mutex_;
  VariableRegistry vars_;
  VarId var_ = 0;
  ConditionEvaluator ce_;
  SeqNo seq_ = 0;
  std::optional<std::size_t> last_count_;
};

/// One scraped instance: the admin port it was scraped on and its
/// document — nullopt when the scrape failed (connect/timeout/decode),
/// which the aggregator reports as a kUnreachable degradation.
using ScrapedInstance =
    std::pair<std::uint16_t, std::optional<wire::InstanceHealth>>;

/// Fetches one instance-scoped health document over the admin protocol.
/// Returns nullopt on any failure within `timeout`.
[[nodiscard]] std::optional<wire::InstanceHealth> scrape_instance_health(
    std::uint16_t admin_port, std::chrono::milliseconds timeout);

/// JSON rendering of one instance document (an object, no trailing
/// newline). Used both standalone (instance blocks of the cluster
/// document) and by the client's `status --json` health block.
[[nodiscard]] std::string instance_health_json(const wire::InstanceHealth& h);

/// Merges scraped instances into the cluster health JSON document:
///
///   {"healthy": bool, "instances": [...], "degradations": N,
///    "unreachable": N, "verdict_rule": "..."}
///
/// The healthy verdict is dogfooded: the total degradation count
/// (including one kUnreachable per failed scrape) is evaluated by a
/// compiled condition-language rule; healthy iff it raises no alert.
[[nodiscard]] std::string aggregate_health_json(
    std::span<const ScrapedInstance> instances);

/// Serves `GET /metrics` (Prometheus text exposition of the process
/// registry) on a loopback TCP port. One thread, one request per
/// connection, HTTP/1.0 close semantics — enough for a scraper.
class PromExporter {
 public:
  /// Binds immediately (port 0 = ephemeral); serving starts with
  /// start(). Throws if the port is taken.
  explicit PromExporter(std::uint16_t port);
  ~PromExporter();
  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

 private:
  void serve();

  net::TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mutex_;
  bool running_ = false;
};

}  // namespace rcm::service
