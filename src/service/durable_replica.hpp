// A CE replica worker with durable state: the unit the alert service
// supervises, kills, and restarts.
//
// Volatile evaluator state (history windows + per-variable accepted-seqno
// watermarks) is persisted as
//
//   checkpoint  ce<i>.ckpt — one CRC frame holding a wire/snapshot.hpp
//               evaluator-state snapshot, written to a temp file and
//               renamed so the file is always either the old or the new
//               checkpoint, never a half-written one;
//   WAL         ce<i>.wal  — a store::FileUpdateLog of every update
//               accepted since that checkpoint, appended and flushed
//               BEFORE the evaluator transitions.
//
// Recovery is checkpoint + WAL replay: decode the snapshot (a torn or
// corrupt checkpoint falls back to a cold start — it is a cache of the
// WAL-reachable state, so correctness never depends on it), then replay
// the WAL's recovered prefix through ConditionEvaluator::replay_update,
// which rebuilds histories and watermarks without re-emitting alerts the
// previous incarnation already delivered. The durable last-seen
// watermarks then make live catch-up safe: anything the restarted
// replica already incorporated is dropped as stale, exactly the paper's
// out-of-order discard rule.
//
// An optional journal (ce<i>.journal) additionally records every
// accepted update forever (never truncated). It is instrumentation for
// the property checkers — U_i across all incarnations — not part of the
// recovery contract.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>

#include "core/evaluator.hpp"
#include "store/file_log.hpp"

namespace rcm::service {

/// Durability knobs shared by every replica of a service.
struct DurabilityOptions {
  std::filesystem::path dir;  ///< data directory (must exist)

  /// Accepted updates between automatic checkpoints; 0 = only explicit
  /// checkpoint() calls. Small values trade WAL-replay time for
  /// checkpoint write amplification (bench/crash_recovery measures it).
  std::size_t checkpoint_every = 256;

  /// Record every accepted update to the never-truncated journal (test /
  /// checker instrumentation; off in production).
  bool record_journal = false;
};

/// What the constructor's recovery pass observed.
struct RecoveryStats {
  bool had_checkpoint = false;   ///< a valid checkpoint frame was decoded
  std::size_t wal_replayed = 0;  ///< WAL updates accepted during replay
  std::size_t corrupt_frames = 0;///< torn/corrupt frames skipped (ckpt+WAL)
  double seconds = 0.0;          ///< wall-clock recovery duration
};

/// One durable CE replica. Not thread-safe: owned and driven by a single
/// worker thread.
class DurableReplica {
 public:
  /// Opens (recovering if files exist) replica `index` in `opts.dir`.
  /// Recovery replays checkpoint + WAL and, when anything was replayed,
  /// takes a fresh checkpoint so the next restart starts compact.
  DurableReplica(ConditionPtr condition, std::size_t index,
                 DurabilityOptions opts);

  /// Durably logs and then evaluates one update: WAL append (flushed),
  /// journal append (if enabled), evaluator transition. Returns the
  /// alert if the condition fired. Rejected (stale / foreign-variable)
  /// updates touch no file.
  std::optional<Alert> on_update(const Update& u);

  /// Snapshots the evaluator state and truncates the WAL. Crash-safe in
  /// either order of failure: the WAL is only truncated after the new
  /// checkpoint is durably in place, and replaying a stale WAL over a
  /// newer checkpoint is idempotent (watermarks drop the duplicates).
  void checkpoint();

  [[nodiscard]] const ConditionEvaluator& evaluator() const noexcept {
    return ce_;
  }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  /// Updates accepted by THIS incarnation (excludes WAL replay).
  [[nodiscard]] std::size_t accepted_live() const noexcept {
    return accepted_live_;
  }
  [[nodiscard]] std::size_t checkpoints_taken() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::size_t wal_records() const noexcept {
    return wal_->appended();
  }

  // Durable file locations, shared with tests and the recovery bench.
  [[nodiscard]] static std::filesystem::path checkpoint_path(
      const std::filesystem::path& dir, std::size_t index);
  [[nodiscard]] static std::filesystem::path wal_path(
      const std::filesystem::path& dir, std::size_t index);
  [[nodiscard]] static std::filesystem::path journal_path(
      const std::filesystem::path& dir, std::size_t index);

  /// Reads replica `index`'s journal: every update it ever accepted, in
  /// acceptance order, across all incarnations (requires record_journal).
  [[nodiscard]] static std::vector<Update> read_journal(
      const std::filesystem::path& dir, std::size_t index);

 private:
  void write_checkpoint_file();

  ConditionPtr condition_;
  std::size_t index_;
  DurabilityOptions opts_;
  ConditionEvaluator ce_;
  std::unique_ptr<store::FileUpdateLog> wal_;
  std::unique_ptr<store::FileUpdateLog> journal_;
  RecoveryStats recovery_;
  std::size_t accepted_live_ = 0;
  std::size_t since_checkpoint_ = 0;
  std::size_t checkpoints_ = 0;
};

}  // namespace rcm::service
