// Self-monitoring availability probe for the alert service, in the style
// of FoundationDB's monitored metrics: an external agent injects a synthetic
// "probe" update at a fixed interval and measures how long the service
// takes to turn it into a displayed alert. Probes whose end-to-end latency
// exceeds a budget open an *unavailability window*; the window closes when
// a later probe is answered within budget again.
//
// The probe dogfoods the system it watches: every finalized latency sample
// is fed as an update into an ordinary ConditionEvaluator running the
// rcm condition-language expression
//
//   probe.latency.exceeded:  probe_latency[0] > <budget>
//
// so "the service is slow" is itself an rcm alert, produced by the same
// evaluation machinery the service runs (paper §2's T mapping).
//
// Two layers:
//   ProbeMonitor      — pure, clockless bookkeeping: feed it probe sends,
//                       answers and time ticks; fully unit-testable.
//   AvailabilityProbe — a live thread driving a ProbeMonitor against a
//                       running AlertService over real sockets (UDP probe
//                       updates in, TCP subscriber alerts out).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/types.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"

namespace rcm::service {

/// A contiguous span of wall time during which the service was not
/// answering probes within budget. `from` is the send time of the first
/// over-budget probe; `to` is the answer time of the probe that recovered
/// (or the observation end, if the window never closed).
struct UnavailabilityWindow {
  double from = 0.0;
  double to = 0.0;
  bool closed = false;

  [[nodiscard]] double duration() const noexcept { return to - from; }
};

/// Snapshot of everything the probe measured.
struct ProbeReport {
  std::size_t probes_sent = 0;
  std::size_t probes_answered = 0;
  double max_latency = 0.0;  ///< seconds, over answered probes
  /// Fraction of the observed span not covered by unavailability
  /// windows; 1.0 when nothing was observed.
  double availability = 1.0;
  std::vector<UnavailabilityWindow> windows;
  /// Alerts emitted by the dogfooded "probe.latency.exceeded" CE, one
  /// per probe whose latency sample exceeded the budget.
  std::vector<Alert> latency_alerts;
};

/// Pure probe bookkeeping. All times are seconds on one caller-chosen
/// monotone clock; calls must carry non-decreasing times. Deterministic:
/// the report is a function of the call sequence.
class ProbeMonitor {
 public:
  struct Options {
    /// A probe answered later than this (seconds) counts as unavailable.
    double latency_budget = 0.25;
  };

  explicit ProbeMonitor(Options options);

  /// Records that probe `seq` was sent at time `at`.
  void on_probe_sent(SeqNo seq, double at);

  /// Records that the alert answering probe `seq` was observed at `at`.
  /// Unknown or duplicate seqs are ignored.
  void on_answer(SeqNo seq, double at);

  /// Advances the observation clock: any outstanding probe older than
  /// the budget is declared late (opening a window if none is open) and
  /// its running latency is fed to the latency CE once.
  void on_time(double now);

  /// Finalizes and returns the report as of the latest observed time.
  /// A still-open window is reported with closed=false.
  [[nodiscard]] ProbeReport report() const;

  [[nodiscard]] double latency_budget() const noexcept {
    return options_.latency_budget;
  }

 private:
  void feed_sample(SeqNo seq, double latency);
  void open_window(double from);

  Options options_;
  VariableRegistry vars_;
  VarId latency_var_ = 0;
  ConditionEvaluator ce_;

  std::map<SeqNo, double> pending_;  ///< outstanding probes: seq -> send time
  std::set<SeqNo> late_;             ///< already declared late (sample fed)
  std::vector<UnavailabilityWindow> windows_;
  bool window_open_ = false;
  std::size_t sent_ = 0;
  std::size_t answered_ = 0;
  double max_latency_ = 0.0;
  double first_send_ = 0.0;
  double last_time_ = 0.0;
  bool saw_send_ = false;
};

/// Live-probe configuration.
struct ProbeOptions {
  /// Variable the probe updates carry. Must be a variable of the
  /// service's condition, with a value that makes it trigger, so every
  /// probe surfaces as a displayed alert.
  VarId var = 0;
  double trigger_value = 100.0;

  /// Probe sequence numbers start here, far above any real traffic, so
  /// probe-triggered alerts are recognizable by alert.seqno(var).
  SeqNo first_seqno = 1'000'000;

  std::chrono::milliseconds interval{20};
  double latency_budget = 0.25;  ///< seconds
};

/// Drives a ProbeMonitor against a live AlertService: one background
/// thread sends a framed probe update to every replica port each
/// interval (send errors while a replica is down are the lossy front
/// link, not failures) and reads the service's subscriber stream,
/// matching probe-triggered alerts back to their send by sequence
/// number. start() blocks until the subscriber connection is
/// registered, so no probe's answer can be missed.
class AvailabilityProbe {
 public:
  AvailabilityProbe(AlertService& service, ProbeOptions options);
  ~AvailabilityProbe();

  AvailabilityProbe(const AvailabilityProbe&) = delete;
  AvailabilityProbe& operator=(const AvailabilityProbe&) = delete;

  /// Connects the subscriber stream and starts probing. Call once.
  void start();

  /// Stops probing, joins the thread and drains remaining answers.
  /// Idempotent.
  void stop();

  /// Report as of the latest observation. Callable during the run or
  /// after stop().
  [[nodiscard]] ProbeReport report() const;

 private:
  void run();
  [[nodiscard]] double now() const;

  AlertService& service_;
  ProbeOptions options_;

  mutable std::mutex mutex_;
  ProbeMonitor monitor_;
  std::optional<net::TcpStream> subscription_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rcm::service
