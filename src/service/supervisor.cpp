#include "service/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rcm::service {

ReplicaSupervisor::ReplicaSupervisor(BackoffPolicy policy,
                                     std::size_t replicas)
    : policy_(policy), consecutive_(replicas, 0), total_(replicas, 0) {
  if (policy_.initial.count() <= 0)
    throw std::invalid_argument("ReplicaSupervisor: initial must be > 0");
  if (policy_.factor < 1.0)
    throw std::invalid_argument("ReplicaSupervisor: factor must be >= 1");
  if (policy_.max < policy_.initial)
    throw std::invalid_argument("ReplicaSupervisor: max < initial");
}

std::chrono::milliseconds ReplicaSupervisor::next_delay(std::size_t replica) {
  std::size_t& streak = consecutive_.at(replica);
  ++streak;
  ++total_.at(replica);
  // initial * factor^(streak-1), saturating at max without overflow:
  // stop multiplying as soon as the ceiling is reached.
  double ms = static_cast<double>(policy_.initial.count());
  const double cap = static_cast<double>(policy_.max.count());
  for (std::size_t i = 1; i < streak && ms < cap; ++i) ms *= policy_.factor;
  ms = std::min(ms, cap);
  return std::chrono::milliseconds{static_cast<long long>(std::llround(ms))};
}

void ReplicaSupervisor::note_healthy(std::size_t replica,
                                     std::chrono::milliseconds uptime) {
  if (uptime >= policy_.reset_after) consecutive_.at(replica) = 0;
}

std::size_t ReplicaSupervisor::restarts(std::size_t replica) const {
  return total_.at(replica);
}

std::size_t ReplicaSupervisor::consecutive_failures(
    std::size_t replica) const {
  return consecutive_.at(replica);
}

}  // namespace rcm::service
