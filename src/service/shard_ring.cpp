#include "service/shard_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcm::service {

namespace {

// Domain-separation constants so shard tokens and key hashes can never
// collide structurally even for equal raw inputs.
constexpr std::uint64_t kTokenSalt = 0x73686172645f746bULL;  // "shard_tk"
constexpr std::uint64_t kKeySalt = 0x73686172645f6b79ULL;    // "shard_ky"

std::uint64_t token_for(std::uint32_t shard_id, unsigned vnode) {
  return ShardRing::mix64(kTokenSalt ^
                          (static_cast<std::uint64_t>(shard_id) << 20) ^
                          vnode);
}

std::uint64_t key_for(VarId var) {
  return ShardRing::mix64(kKeySalt ^ var);
}

}  // namespace

std::uint64_t ShardRing::mix64(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): full-avalanche, pure integer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardRing::ShardRing(unsigned vnodes) : vnodes_(vnodes) {
  if (vnodes_ == 0) throw std::invalid_argument("ShardRing: vnodes == 0");
}

void ShardRing::add_shard(std::uint32_t shard_id) {
  if (contains(shard_id)) return;
  shards_.insert(std::lower_bound(shards_.begin(), shards_.end(), shard_id),
                 shard_id);
  for (unsigned v = 0; v < vnodes_; ++v)
    ring_.push_back(Token{token_for(shard_id, v), shard_id});
  std::sort(ring_.begin(), ring_.end(), [](const Token& a, const Token& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

void ShardRing::remove_shard(std::uint32_t shard_id) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard_id);
  if (it == shards_.end() || *it != shard_id) return;
  shards_.erase(it);
  ring_.erase(std::remove_if(
                  ring_.begin(), ring_.end(),
                  [&](const Token& t) { return t.shard == shard_id; }),
              ring_.end());
}

bool ShardRing::contains(std::uint32_t shard_id) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard_id);
}

std::vector<std::uint32_t> ShardRing::shards() const { return shards_; }

std::uint32_t ShardRing::owner(VarId var) const {
  if (ring_.empty()) throw std::logic_error("ShardRing::owner: empty ring");
  const std::uint64_t key = key_for(var);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Token& t, std::uint64_t k) { return t.point < k; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

PartialCondition::PartialCondition(ConditionPtr base, std::vector<VarId> owned)
    : base_(std::move(base)), owned_(std::move(owned)) {
  if (!base_) throw std::invalid_argument("PartialCondition: null base");
  const std::vector<VarId>& all = base_->variables();
  for (std::size_t i = 0; i < owned_.size(); ++i) {
    if (i > 0 && owned_[i - 1] >= owned_[i])
      throw std::invalid_argument("PartialCondition: owned not ascending");
    if (!std::binary_search(all.begin(), all.end(), owned_[i]))
      throw std::invalid_argument("PartialCondition: var not in base set");
  }
  name_ = std::string(base_->name()) + "[partial]";
}

std::string_view PartialCondition::name() const noexcept { return name_; }

const std::vector<VarId>& PartialCondition::variables() const noexcept {
  return owned_;
}

int PartialCondition::degree(VarId v) const { return base_->degree(v); }

bool PartialCondition::evaluate(const HistorySet&) const { return false; }

Triggering PartialCondition::triggering() const noexcept {
  return Triggering::kAggressive;
}

std::vector<VarId> owned_variables(const ShardRing& ring,
                                   const Condition& condition,
                                   std::uint32_t shard_id) {
  std::vector<VarId> owned;
  for (VarId v : condition.variables())
    if (ring.owner(v) == shard_id) owned.push_back(v);
  return owned;
}

}  // namespace rcm::service
