#include "service/alert_service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "net/deployment.hpp"  // encode_end_marker / decode_end_marker
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "service/shard_cluster.hpp"  // kMergeShardId for the health role
#include "service/shard_ring.hpp"  // kDefaultVnodes for the trivial map
#include "obs/trace.hpp"
#include "wire/buffer.hpp"
#include "wire/frame.hpp"

namespace rcm::service {
namespace {

constexpr std::chrono::milliseconds kAcceptPoll{50};
constexpr std::chrono::milliseconds kMonitorTick{5};
// The watchdog evaluates every ~kWatchdogEvery monitor ticks (~500 ms):
// frequent enough to catch stalls well inside the budgets, cheap enough
// to be invisible next to ingest.
constexpr std::uint64_t kWatchdogEvery = 100;

// trace-dump bodies ride in one admin response frame; leave headroom
// under wire::kMaxFramePayload (1 MiB) for the response envelope.
constexpr std::size_t kTraceDumpBudget = 900u * 1024;

// Peer scrapes during cluster health aggregation; an instance that
// cannot answer within this window is reported unreachable.
constexpr std::chrono::milliseconds kHealthScrapeTimeout{500};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

AlertService::AlertService(ServiceConfig config)
    : config_(std::move(config)),
      supervisor_(config_.backoff, config_.num_replicas),
      displayer_(make_filter(config_.filter,
                             config_.condition
                                 ? config_.condition->variables()
                                 : std::vector<VarId>{})) {
  if (!config_.condition)
    throw std::invalid_argument("AlertService: null condition");
  if (config_.num_replicas == 0)
    throw std::invalid_argument("AlertService: num_replicas must be >= 1");
  if (config_.data_dir.empty())
    throw std::invalid_argument("AlertService: data_dir required");
  if (config_.poll_interval.count() <= 0)
    throw std::invalid_argument("AlertService: poll_interval must be > 0");
  std::filesystem::create_directories(config_.data_dir);

  load_dm_ends();
  ends_out_.open(ends_path(), std::ios::binary | std::ios::app);
  if (!ends_out_.is_open())
    throw std::runtime_error("AlertService: cannot open " +
                             ends_path().string());

  // The session layer recovers its durable alert log + cursors before
  // any thread can publish or accept.
  sessions_ = std::make_unique<SessionManager>(
      config_.data_dir, config_.subscriber_encoding, config_.session_limits);

  // Bind every replica's ingest port up front so clients can be handed a
  // stable endpoint list before any worker runs.
  for (std::size_t i = 0; i < config_.num_replicas; ++i) {
    auto slot = std::make_unique<ReplicaSlot>();
    slot->pending_socket = std::make_unique<net::UdpSocket>();
    slot->port = slot->pending_socket->port();
    slots_.push_back(std::move(slot));
  }

  try {
    displayer_thread_ = std::thread(&AlertService::displayer_loop, this);
    acceptor_thread_ = std::thread(&AlertService::acceptor_loop, this);
    admin_thread_ = std::thread(&AlertService::admin_loop, this);
    {
      std::lock_guard g{lifecycle_mutex_};
      for (std::size_t i = 0; i < slots_.size(); ++i) start_worker_locked(i);
    }
    monitor_thread_ = std::thread(&AlertService::monitor_loop, this);
  } catch (...) {
    try {
      drain();
    } catch (...) {
    }
    throw;
  }
}

AlertService::~AlertService() {
  try {
    drain();
  } catch (...) {
    // Destructors must not throw; drain failures here mean the process
    // is going down anyway.
  }
}

// ---- endpoints ---------------------------------------------------------

std::uint16_t AlertService::replica_port(std::size_t i) const {
  return slots_.at(i)->port;
}

std::vector<std::uint16_t> AlertService::replica_ports() const {
  std::vector<std::uint16_t> ports;
  ports.reserve(slots_.size());
  for (const auto& slot : slots_) ports.push_back(slot->port);
  return ports;
}

std::uint16_t AlertService::subscriber_port() const noexcept {
  return sub_listener_.port();
}

std::uint16_t AlertService::admin_port() const noexcept {
  return admin_listener_.port();
}

// ---- replica lifecycle -------------------------------------------------

void AlertService::start_worker_locked(std::size_t i) {
  ReplicaSlot& slot = *slots_[i];
  slot.ctl = std::make_shared<WorkerControl>();
  slot.failed.store(false, std::memory_order_release);
  ++slot.incarnations;
  slot.up = true;
  slot.up_since = std::chrono::steady_clock::now();
  slot.thread = std::thread(&AlertService::worker_loop, this, i, slot.ctl,
                            std::move(slot.pending_socket));
}

void AlertService::stop_worker_locked(std::size_t i, bool graceful) {
  ReplicaSlot& slot = *slots_[i];
  if (!slot.up) return;
  slot.ctl->graceful.store(graceful, std::memory_order_release);
  slot.ctl->stop.store(true, std::memory_order_release);
  if (slot.thread.joinable()) slot.thread.join();
  slot.up = false;
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - slot.up_since);
  supervisor_.note_healthy(i, uptime);
}

void AlertService::kill_replica(std::size_t i) {
  if (i >= slots_.size())
    throw std::out_of_range("kill_replica: no such replica");
  std::lock_guard g{lifecycle_mutex_};
  ReplicaSlot& slot = *slots_[i];
  if (!slot.up) return;  // already down: killing a corpse is idempotent
  stop_worker_locked(i, /*graceful=*/false);
  slot.restart_at =
      std::chrono::steady_clock::now() + supervisor_.next_delay(i);
  RCM_COUNT("service.replica.kills");
}

void AlertService::restart_replica(std::size_t i) {
  if (i >= slots_.size())
    throw std::out_of_range("restart_replica: no such replica");
  std::lock_guard g{lifecycle_mutex_};
  ReplicaSlot& slot = *slots_[i];
  if (slot.up) return;
  start_worker_locked(i);
  RCM_COUNT("service.replica.restarts");
}

void AlertService::request_checkpoint(std::size_t i) {
  if (i >= slots_.size())
    throw std::out_of_range("request_checkpoint: no such replica");
  std::lock_guard g{lifecycle_mutex_};
  ReplicaSlot& slot = *slots_[i];
  if (!slot.up) throw std::runtime_error("request_checkpoint: replica down");
  slot.ctl->checkpoint_requested.store(true, std::memory_order_release);
}

std::size_t AlertService::replica_restarts(std::size_t i) const {
  std::lock_guard g{lifecycle_mutex_};
  // incarnations counts starts; the first one is not a restart.
  const std::uint64_t inc = slots_.at(i)->incarnations;
  return inc > 0 ? static_cast<std::size_t>(inc - 1) : 0;
}

void AlertService::monitor_loop() {
  std::uint64_t ticks = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(kMonitorTick);
    {
      std::lock_guard g{lifecycle_mutex_};
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        ReplicaSlot& slot = *slots_[i];
        if (slot.up && slot.failed.load(std::memory_order_acquire)) {
          // Worker died on its own (bind failure, I/O error, ...): treat
          // like a crash and schedule a backed-off restart.
          stop_worker_locked(i, /*graceful=*/false);
          slot.restart_at = now + supervisor_.next_delay(i);
          RCM_COUNT("service.replica.failures");
        }
        if (!slot.up && config_.auto_restart && !draining_.load() &&
            now >= slot.restart_at) {
          start_worker_locked(i);
          RCM_COUNT("service.replica.restarts");
        }
      }
    }
    // Stall watchdog, piggybacked on the monitor's tick. Runs outside
    // the lifecycle lock (collect_degradations takes it briefly itself)
    // so a slow heartbeat sweep never delays a crash restart.
    if (config_.watchdog_enabled && ++ticks % kWatchdogEvery == 0) {
      const std::vector<wire::Degradation> degs = collect_degradations();
      if (watchdog_alerts_.on_check(degs.size()).has_value()) {
        RCM_COUNT("service.watchdog.alerts");
      }
    }
  }
}

// ---- ingest workers ----------------------------------------------------

DurabilityOptions AlertService::durability_options() const {
  DurabilityOptions opts;
  opts.dir = config_.data_dir;
  opts.checkpoint_every = config_.checkpoint_every;
  opts.record_journal = config_.record_journal;
  return opts;
}

void AlertService::worker_loop(std::size_t index,
                               std::shared_ptr<WorkerControl> ctl,
                               std::unique_ptr<net::UdpSocket> socket) {
  ReplicaSlot& slot = *slots_[index];
  obs::trace::set_thread_name("replica-" + std::to_string(index));
  try {
    // Recover durable state FIRST, then (re)bind: once the port is open
    // we must be ready to accept, and the stable port is what lets a
    // restarted incarnation rejoin the live stream unannounced.
    DurableReplica replica{config_.condition, index, durability_options()};
    slot.recovered_wal.store(replica.recovery().wal_replayed,
                             std::memory_order_relaxed);
    slot.accepted.store(0, std::memory_order_relaxed);
    slot.wal_records.store(replica.wal_records(), std::memory_order_relaxed);
    slot.checkpoints.store(0, std::memory_order_relaxed);
    if (!socket) socket = std::make_unique<net::UdpSocket>(slot.port);

    const bool is_merge =
        config_.shard && config_.shard->shard_id == kMergeShardId;
    wire::FrameCursor cursor;
    while (!ctl->stop.load(std::memory_order_acquire)) {
      slot.heartbeat_ns.store(steady_now_ns(), std::memory_order_relaxed);
      if (ctl->checkpoint_requested.exchange(false,
                                             std::memory_order_acq_rel)) {
        replica.checkpoint();
        slot.checkpoints.store(replica.checkpoints_taken(),
                               std::memory_order_relaxed);
      }
      auto datagram = socket->receive(config_.poll_interval);
      if (!datagram) continue;
      RCM_COUNT("service.ingest.datagrams");
      ingested_.fetch_add(1, std::memory_order_relaxed);
      cursor.feed(*datagram);
      while (auto payload = cursor.next()) {
        if (auto dm = net::decode_end_marker(*payload)) {
          note_dm_end(*dm);
          continue;
        }
        wire::UpdateMessage msg;
        try {
          msg = wire::decode_update_message(*payload);
        } catch (const wire::DecodeError&) {
          RCM_COUNT("service.ingest.corrupt_frames");
          continue;
        }
        // Adopt the DM's trace context for this update's hops (ingest →
        // WAL → evaluate); the raised alert carries the trace id onward.
        obs::trace::ContextScope tscope{msg.trace};
        RCM_TRACE_SPAN(ingest_span, "service.ingest");
        ingest_span.var(msg.update.var).seq(msg.update.seqno);
        // The cross-shard hop lands here: a span distinct from plain
        // ingest so traces show shard.forward → merge.ingest pairs
        // covering the merge tier's WAL + CE work for the update.
        std::optional<obs::trace::Span> merge_span;
        if (is_merge) {
          merge_span.emplace("merge.ingest");
          merge_span->var(msg.update.var).seq(msg.update.seqno);
          RCM_COUNT("service.merge.ingested");
        }
        // Decide acceptance up front so the on_accept hook (shard →
        // merge-tier forwarding) fires only for updates that were
        // journaled + applied, and only after they durably were.
        const bool will_accept =
            config_.on_accept &&
            replica.evaluator().would_accept(msg.update);
        if (auto alert = replica.on_update(msg.update)) {
          RCM_COUNT("service.alerts.raised");
          alert_queue_.push(std::move(*alert));
        }
        if (will_accept) {
          RCM_COUNT("service.shard.forwarded");
          config_.on_accept(msg.update);
        }
      }
      slot.accepted.store(replica.accepted_live(), std::memory_order_relaxed);
      slot.wal_records.store(replica.wal_records(),
                             std::memory_order_relaxed);
      slot.checkpoints.store(replica.checkpoints_taken(),
                             std::memory_order_relaxed);
    }
    // Graceful stop (drain): compact state so the next start is a pure
    // checkpoint load. A kill skips this on purpose — that's the crash.
    if (ctl->graceful.load(std::memory_order_acquire)) replica.checkpoint();
  } catch (const std::exception&) {
    slot.failed.store(true, std::memory_order_release);
  }
}

// ---- display + fan-out -------------------------------------------------

void AlertService::displayer_loop() {
  obs::trace::set_thread_name("ad");
  ad_heartbeat_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  while (auto a = alert_queue_.pop()) {
    // Beaten per alert; the watchdog only ages this while the queue is
    // non-empty (an idle AD blocks in pop() by design).
    ad_heartbeat_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    // Re-enter the alert's trace on this side of the queue; the
    // displayer records the filter-verdict span itself.
    obs::trace::ContextScope tscope{
        obs::trace::TraceContext{a->trace_id, 0}};
    bool shown;
    {
      std::lock_guard g{display_mutex_};
      shown = displayer_.on_alert(*a);
    }
    if (!shown) continue;
    RCM_COUNT("service.alerts.displayed");
    displayed_count_.fetch_add(1, std::memory_order_relaxed);
    fanout(*a);
  }
}

void AlertService::fanout(const Alert& a) {
  RCM_SCOPED_TIMER(timer, "service.fanout.seconds");
  RCM_TRACE_SPAN(span, "service.fanout");
  // Durable append + wake of the session event loop; never blocks on a
  // subscriber socket, so one stalled peer cannot stall the AD thread.
  sessions_->publish(a);
}

void AlertService::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto stream = sub_listener_.accept(kAcceptPoll);
    if (!stream) continue;
    sessions_->adopt(std::move(*stream));
  }
}

// ---- admin -------------------------------------------------------------

void AlertService::admin_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = admin_listener_.accept(kAcceptPoll);
    if (!conn) continue;
    // One thread per connection: a cluster-health aggregation held open
    // by one client must not block a peer's instance-scoped scrape of
    // this same instance. Threads exit on EOF or stopping_; drain joins
    // whatever is left.
    std::lock_guard g{admin_conns_mutex_};
    admin_conn_threads_.emplace_back(
        [this, c = std::make_shared<net::TcpStream>(std::move(*conn))] {
          try {
            serve_admin(*c);
          } catch (const std::system_error&) {
            // Connection died mid-exchange; the thread just ends.
          }
        });
  }
  std::lock_guard g{admin_conns_mutex_};
  for (std::thread& t : admin_conn_threads_)
    if (t.joinable()) t.join();
  admin_conn_threads_.clear();
}

void AlertService::serve_admin(net::TcpStream& conn) {
  wire::FrameCursor cursor;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto bytes = conn.read_some(kAcceptPoll);
    if (!bytes) continue;      // idle; re-check stopping_
    if (bytes->empty()) return;  // orderly EOF
    cursor.feed(*bytes);
    while (auto payload = cursor.next()) {
      const AdminResponse resp = dispatch_admin(*payload);
      conn.write_all(wire::frame(encode_admin_response(resp)));
    }
  }
}

AdminResponse AlertService::dispatch_admin(
    std::span<const std::uint8_t> payload) {
  AdminResponse resp;
  const auto unsupported_block = [](std::uint8_t command) {
    AdminUnsupported u;
    u.command = command;
    u.server_version = kAdminVersion;
    u.min_major = kAdminMinMajor;
    u.max_major = kAdminMaxMajor;
    u.max_command = static_cast<std::uint8_t>(AdminCommand::kMetricsProm);
    return u;
  };
  try {
    const AdminRequest req = decode_admin_request(payload);
    if (!req.known) {
      // A versioned peer sent a command newer than this binary: tell it
      // what we do speak instead of killing the exchange.
      resp.ok = false;
      resp.error = "unsupported admin command " +
                   std::to_string(static_cast<unsigned>(req.raw_command));
      resp.unsupported = unsupported_block(req.raw_command);
      return resp;
    }
    const auto replica = static_cast<std::size_t>(req.replica);
    switch (req.command) {
      case AdminCommand::kStatus:
        resp.status = status();
        break;
      case AdminCommand::kKill:
        kill_replica(replica);
        break;
      case AdminCommand::kRestart:
        restart_replica(replica);
        break;
      case AdminCommand::kCheckpoint:
        request_checkpoint(replica);
        break;
      case AdminCommand::kDrain: {
        drain_requested_.store(true, std::memory_order_release);
        std::lock_guard g{drain_request_mutex_};
        drain_request_cv_.notify_all();
        break;
      }
      case AdminCommand::kMetrics:
        resp.body = obs::registry().snapshot_json();
        break;
      case AdminCommand::kTraceDump:
        resp.body = obs::trace::export_chrome_json(kTraceDumpBudget);
        break;
      case AdminCommand::kSessions:
        resp.body = sessions_json();
        break;
      case AdminCommand::kShardMap: {
        // Binary-safe: the map bytes ride the length-prefixed body
        // string. An unsharded service serves a trivial one-shard map so
        // a router pointed at any instance always resolves.
        const wire::ShardMap map = config_.shard_map_provider
                                       ? config_.shard_map_provider()
                                       : default_shard_map();
        const auto bytes = wire::encode_shard_map(map);
        resp.body = std::string(bytes.begin(), bytes.end());
        break;
      }
      case AdminCommand::kHealth: {
        if (req.scope == HealthScope::kInstance) {
          // Binary InstanceHealth in the body, same convention as the
          // shard map: an aggregator decodes it, a human asks for the
          // cluster scope instead.
          const auto bytes = wire::encode_instance_health(instance_health());
          resp.body = std::string(bytes.begin(), bytes.end());
        } else {
          resp.body = cluster_health_json();
        }
        break;
      }
      case AdminCommand::kMetricsProm:
        resp.body = obs::registry().snapshot_prometheus();
        break;
    }
  } catch (const wire::UnsupportedVersion& e) {
    // Incompatible peer major: still a clean error reply, now with the
    // range the peer would need to downgrade into.
    resp.ok = false;
    resp.error = e.what();
    resp.status.reset();
    resp.body.reset();
    resp.unsupported = unsupported_block(
        payload.empty() ? std::uint8_t{0} : payload[0]);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    resp.status.reset();
    resp.body.reset();
  }
  return resp;
}

std::string AlertService::sessions_json() const {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string out = "{\"log_end\": " +
                    std::to_string(sessions_->log_end());
  if (config_.shard) {
    // Every session on this instance is attached to this shard; name it
    // so fleet tooling can aggregate per-shard subscriber state.
    out += ", \"shard\": " + std::to_string(config_.shard->shard_id) +
           ", \"shard_epoch\": " + std::to_string(config_.shard->epoch);
  }
  out += ", \"sessions\": [";
  bool first = true;
  for (const SessionInfo& info : sessions_->sessions()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": \"" + escape(info.id) +
           "\", \"acked\": " + std::to_string(info.acked) +
           ", \"framed\": " + std::to_string(info.framed) +
           ", \"lag\": " + std::to_string(info.lag) +
           ", \"backlog\": " + std::to_string(info.backlog) +
           ", \"connected\": " + (info.connected ? "true" : "false") +
           ", \"evicted\": " + (info.evicted ? "true" : "false") + "}";
  }
  out += "]}\n";
  return out;
}

wire::ShardMap AlertService::default_shard_map() const {
  wire::ShardMap map;
  map.epoch = 0;
  wire::ShardMapEntry entry;
  entry.shard_id = config_.shard ? config_.shard->shard_id : 0;
  entry.vnodes = kDefaultVnodes;
  entry.replica_ports = replica_ports();
  map.shards.push_back(std::move(entry));
  return map;
}

ServiceStatus AlertService::status() {
  ServiceStatus s;
  s.ingested_datagrams = ingested_.load(std::memory_order_relaxed);
  s.displayed = displayed_count_.load(std::memory_order_relaxed);
  s.subscribers = sessions_->connections();
  {
    std::vector<SessionInfo> infos = sessions_->sessions();
    // The response extension is size-bounded; ship the worst laggards
    // first and let total_sessions report the real count.
    std::sort(infos.begin(), infos.end(),
              [](const SessionInfo& a, const SessionInfo& b) {
                return a.lag > b.lag;
              });
    s.total_sessions = infos.size();
    for (SessionInfo& info : infos) {
      SessionStatus e;
      e.id = std::move(info.id);
      e.acked = info.acked;
      e.framed = info.framed;
      e.lag = info.lag;
      e.backlog = info.backlog;
      e.connected = info.connected;
      e.evicted = info.evicted;
      s.sessions.push_back(std::move(e));
    }
  }
  {
    std::lock_guard g{ends_mutex_};
    s.dm_ends = dm_ends_.size();
  }
  if (config_.shard) {
    ShardStatus st;
    st.shard_id = config_.shard->shard_id;
    st.epoch = config_.shard->epoch;
    st.owned = config_.condition->variables();
    st.total_owned = st.owned.size();
    s.shard = std::move(st);
  }
#if RCM_METRICS_ENABLED
  // Process-wide END-timeout count (satellite of the obs layer): covers
  // every CE loop in this process, not just this service instance.
  s.end_timeouts = obs::registry().counter("net.ce.end_timeouts").value();
#endif
  std::lock_guard g{lifecycle_mutex_};
  for (const auto& slot : slots_) {
    ReplicaStatus rs;
    rs.state = slot->up ? ReplicaState::kRunning : ReplicaState::kDown;
    rs.port = slot->port;
    rs.incarnation = slot->incarnations;
    rs.accepted = slot->accepted.load(std::memory_order_relaxed);
    rs.wal_records = slot->wal_records.load(std::memory_order_relaxed);
    rs.checkpoints = slot->checkpoints.load(std::memory_order_relaxed);
    rs.recovered_wal = slot->recovered_wal.load(std::memory_order_relaxed);
    s.replicas.push_back(rs);
  }
  return s;
}

// ---- health ------------------------------------------------------------

std::vector<wire::Degradation> AlertService::collect_degradations() {
  std::vector<wire::Degradation> out;
  const std::uint64_t now = steady_now_ns();
  const auto ns_of = [](std::chrono::milliseconds ms) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count());
  };
  {
    std::lock_guard g{lifecycle_mutex_};
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const ReplicaSlot& slot = *slots_[i];
      if (!slot.up) {
        out.push_back({wire::DegradationKind::kReplicaDown,
                       "replica " + std::to_string(i) + " down",
                       static_cast<std::uint64_t>(i)});
        continue;
      }
      const std::uint64_t hb = slot.heartbeat_ns.load(std::memory_order_relaxed);
      if (hb != 0 && now > hb &&
          now - hb > ns_of(config_.watchdog.worker_heartbeat_budget)) {
        out.push_back({wire::DegradationKind::kHeartbeatMissed,
                       "replica " + std::to_string(i) + " heartbeat stale",
                       (now - hb) / 1000000});  // ms
      }
    }
  }
  const std::uint64_t tick = sessions_->last_tick_ns();
  if (tick != 0 && now > tick &&
      now - tick > ns_of(config_.watchdog.session_tick_budget)) {
    out.push_back({wire::DegradationKind::kEventLoopStalled,
                   "session event loop tick stale", (now - tick) / 1000000});
  }
  // An idle AD blocks in pop() by design; only a non-empty queue with a
  // stale heartbeat means alerts are piling up behind a stuck displayer.
  if (alert_queue_.size() > 0) {
    const std::uint64_t hb = ad_heartbeat_ns_.load(std::memory_order_relaxed);
    if (hb != 0 && now > hb &&
        now - hb > ns_of(config_.watchdog.ad_queue_budget)) {
      out.push_back({wire::DegradationKind::kAdStalled,
                     "alert displayer stalled with queued alerts",
                     (now - hb) / 1000000});
    }
  }
#if RCM_METRICS_ENABLED
  {
    const obs::Histogram& wal =
        obs::registry().histogram("service.wal.append.seconds");
    const double p99 = wal.percentile(0.99);
    if (wal.count() > 0 && p99 > config_.watchdog.wal_p99_budget) {
      out.push_back({wire::DegradationKind::kWalFlushSlow,
                     "WAL append p99 over budget (value in us)",
                     static_cast<std::uint64_t>(p99 * 1e6)});
    }
  }
#endif
  if (config_.session_limits.lag_alert_budget > 0) {
    std::uint64_t max_lag = 0;
    for (const SessionInfo& info : sessions_->sessions())
      max_lag = std::max(max_lag, info.lag);
    if (max_lag > config_.session_limits.lag_alert_budget) {
      out.push_back({wire::DegradationKind::kSessionLagExceeded,
                     "subscriber session lag over budget", max_lag});
    }
  }
  return out;
}

wire::InstanceHealth AlertService::instance_health() {
  wire::InstanceHealth h;
  if (!config_.shard) {
    h.role = wire::InstanceRole::kStandalone;
  } else {
    h.role = config_.shard->shard_id == kMergeShardId
                 ? wire::InstanceRole::kMerge
                 : wire::InstanceRole::kShard;
    h.shard_id = config_.shard->shard_id;
    h.epoch = config_.shard->epoch;
  }
  h.uptime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  {
    const std::vector<SessionInfo> infos = sessions_->sessions();
    h.sessions = infos.size();
    for (const SessionInfo& info : infos)
      h.max_session_lag = std::max(h.max_session_lag, info.lag);
  }
  h.alert_queue_depth = alert_queue_.size();
  const std::uint64_t now = steady_now_ns();
  {
    std::lock_guard g{lifecycle_mutex_};
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const ReplicaSlot& slot = *slots_[i];
      wire::ReplicaHealth r;
      r.replica = static_cast<std::uint32_t>(i);
      r.up = slot.up;
      r.incarnations = slot.incarnations;
      const std::uint64_t hb =
          slot.heartbeat_ns.load(std::memory_order_relaxed);
      r.heartbeat_age_ns = (hb != 0 && now > hb) ? now - hb : 0;
      r.accepted = slot.accepted.load(std::memory_order_relaxed);
      r.wal_records = slot.wal_records.load(std::memory_order_relaxed);
      h.replicas.push_back(std::move(r));
    }
  }
  // Windowed rates come from the process sampler; 0 when it is not
  // running (or under -DRCM_NO_METRICS), which keeps the document shape
  // stable across builds.
  static constexpr const char* kRateNames[] = {
      "service.ingest.datagrams", "service.wal.appends",
      "service.alerts.raised", "service.alerts.displayed",
      "service.shard.forwarded"};
  for (const char* name : kRateNames) {
    wire::RateSample r;
    r.name = name;
    r.rate_10s = obs::sampler().rate(name, std::chrono::seconds{10});
    r.rate_1m = obs::sampler().rate(name, std::chrono::seconds{60});
    r.rate_5m = obs::sampler().rate(name, std::chrono::seconds{300});
    h.rates.push_back(std::move(r));
  }
  h.degradations = collect_degradations();
  h.healthy = h.degradations.empty();
  return h;
}

std::string AlertService::cluster_health_json() {
  const std::vector<std::uint16_t> endpoints =
      config_.health_endpoints_provider
          ? config_.health_endpoints_provider()
          : std::vector<std::uint16_t>{admin_port()};
  std::vector<ScrapedInstance> scraped;
  scraped.reserve(endpoints.size());
  for (const std::uint16_t port : endpoints) {
    if (port == admin_port()) {
      // Self-scrape is served directly: going through our own admin
      // socket from inside an admin handler would be pointless TCP at
      // best and a deadlock risk at worst.
      scraped.emplace_back(port, instance_health());
    } else {
      scraped.emplace_back(port,
                           scrape_instance_health(port, kHealthScrapeTimeout));
    }
  }
  return aggregate_health_json(scraped);
}

// ---- drain -------------------------------------------------------------

bool AlertService::drain_requested() const noexcept {
  return drain_requested_.load(std::memory_order_acquire);
}

bool AlertService::await_drain_request(std::chrono::milliseconds timeout) {
  std::unique_lock g{drain_request_mutex_};
  return drain_request_cv_.wait_for(
      g, timeout, [&] { return drain_requested_.load(); });
}

void AlertService::drain() {
  std::lock_guard g{drain_mutex_};
  if (drain_done_) return;
  draining_.store(true, std::memory_order_release);   // stop auto-restarts
  stopping_.store(true, std::memory_order_release);   // stop service loops
  if (monitor_thread_.joinable()) monitor_thread_.join();
  {
    std::lock_guard g2{lifecycle_mutex_};
    for (std::size_t i = 0; i < slots_.size(); ++i)
      stop_worker_locked(i, /*graceful=*/true);
  }
  // Workers are gone: nothing pushes anymore. Close and let the
  // displayer drain the remainder through the filter and fan-out.
  alert_queue_.close();
  if (displayer_thread_.joinable()) displayer_thread_.join();
  // Publishes are over; give sessions a bounded flush, then FIN them.
  if (sessions_) sessions_->stop(std::chrono::milliseconds{500});
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  if (admin_thread_.joinable()) admin_thread_.join();
  drain_done_ = true;
}

// ---- stream bookkeeping ------------------------------------------------

std::filesystem::path AlertService::ends_path() const {
  return config_.data_dir / "ends.log";
}

void AlertService::load_dm_ends() {
  std::ifstream in{ends_path(), std::ios::binary};
  if (!in.is_open()) return;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  while (auto payload = cursor.next()) {
    try {
      wire::Reader r{*payload};
      dm_ends_.insert(static_cast<std::size_t>(r.varint()));
    } catch (const wire::DecodeError&) {
      // Torn tail: the END it recorded will be re-sent or re-observed.
    }
  }
}

void AlertService::note_dm_end(std::size_t dm) {
  std::lock_guard g{ends_mutex_};
  if (!dm_ends_.insert(dm).second) return;  // duplicate END: idempotent
  wire::Writer w;
  w.varint(dm);
  const auto framed = wire::frame(w.bytes());
  ends_out_.write(reinterpret_cast<const char*>(framed.data()),
                  static_cast<std::streamsize>(framed.size()));
  ends_out_.flush();
  RCM_COUNT("service.dm_ends");
  ends_cv_.notify_all();
}

bool AlertService::await_dm_ends(std::size_t count,
                                 std::chrono::milliseconds timeout) {
  std::unique_lock g{ends_mutex_};
  return ends_cv_.wait_for(g, timeout,
                           [&] { return dm_ends_.size() >= count; });
}

std::uint64_t AlertService::activity_counter() const {
  std::uint64_t n = ingested_.load(std::memory_order_relaxed) +
                    displayed_count_.load(std::memory_order_relaxed);
  std::lock_guard g{lifecycle_mutex_};
  for (const auto& slot : slots_)
    n += slot->accepted.load(std::memory_order_relaxed);
  return n;
}

bool AlertService::await_idle(std::chrono::milliseconds idle,
                              std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto last_change = std::chrono::steady_clock::now();
  std::uint64_t last = activity_counter();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    const std::uint64_t cur = activity_counter();
    if (cur != last) {
      last = cur;
      last_change = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - last_change >= idle) {
      return true;
    }
  }
  return false;
}

// ---- instrumentation ---------------------------------------------------

std::vector<Alert> AlertService::displayed() const {
  std::lock_guard g{display_mutex_};
  return displayer_.displayed();
}

std::vector<AlertProvenance> AlertService::provenance() const {
  std::lock_guard g{display_mutex_};
  return displayer_.provenance();
}

std::vector<Update> AlertService::replica_journal(std::size_t i) const {
  if (i >= slots_.size())
    throw std::out_of_range("replica_journal: no such replica");
  return DurableReplica::read_journal(config_.data_dir, i);
}

}  // namespace rcm::service
