// rcm_service_client — companion tool for rcm_service: admin commands,
// a synthetic DM feeder, and an alert subscriber.
//
//   rcm_service_client --cmd status   --admin-port P [--json]
//   rcm_service_client --cmd kill     --admin-port P --replica 1
//   rcm_service_client --cmd restart  --admin-port P --replica 1
//   rcm_service_client --cmd checkpoint --admin-port P --replica 0
//   rcm_service_client --cmd drain    --admin-port P
//   rcm_service_client --cmd metrics  --admin-port P
//   rcm_service_client --cmd trace-dump --admin-port P [--out trace.json]
//   rcm_service_client --cmd feed     --ports P1,P2 --updates 1000 --seed 7
//   rcm_service_client --cmd subscribe --sub-port P
//   rcm_service_client --cmd subscribe --sub-port P --session worker-3 \
//                      [--from 17]
//   rcm_service_client --cmd sessions --admin-port P
//   rcm_service_client --cmd shardmap --admin-port P [--json]
//   rcm_service_client --cmd health   --admin-port P [--instance]
//   rcm_service_client --cmd metrics-prom --admin-port P [--out m.prom]
//
// `health` asks the instance for the aggregated cluster health document
// (it scrapes every peer it knows about, including itself); with
// `--instance` it prints only that instance's own document.
// `metrics-prom` prints the Prometheus text exposition of the service's
// registry. `metrics` prints the service's live obs registry snapshot
// (JSON);
// `trace-dump` fetches the Chrome trace_event export — load the file in
// chrome://tracing or https://ui.perfetto.dev. `--json` makes `status`
// machine-readable for CI and the swarm fuzzer.
//
// `subscribe --session` opens a durable session (service/session.hpp):
// the service replays every alert from `--from` (or the session's
// durable cursor) before the live stream, and the client acks as it
// consumes, so killing and rerunning the same command never loses an
// alert. `sessions` lists per-session cursor/lag/backlog as JSON.
//
// Exit codes: 0 = ok, 1 = service reported an error, 2 = usage/IO error.
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "service/admin.hpp"
#include "service/health.hpp"
#include "wire/health.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/session.hpp"
#include "wire/shard.hpp"

namespace {

using namespace rcm;

std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    ports.push_back(static_cast<std::uint16_t>(std::stoul(item)));
  }
  return ports;
}

service::AdminResponse admin_exchange(std::uint16_t port,
                                      const service::AdminRequest& req) {
  net::TcpStream conn = net::TcpStream::connect(port);
  conn.write_all(wire::frame(service::encode_admin_request(req)));
  wire::FrameCursor cursor;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (std::chrono::steady_clock::now() < deadline) {
    auto bytes = conn.read_some(std::chrono::milliseconds{200});
    if (!bytes) continue;
    if (bytes->empty()) break;  // EOF before a full response
    cursor.feed(*bytes);
    if (auto payload = cursor.next())
      return service::decode_admin_response(*payload);
  }
  throw std::runtime_error("admin response timed out");
}

void print_status(const service::ServiceStatus& s) {
  std::printf("datagrams in: %llu   displayed: %llu   subscribers: %llu   "
              "dm-ends: %llu   end-timeouts: %llu\n",
              static_cast<unsigned long long>(s.ingested_datagrams),
              static_cast<unsigned long long>(s.displayed),
              static_cast<unsigned long long>(s.subscribers),
              static_cast<unsigned long long>(s.dm_ends),
              static_cast<unsigned long long>(s.end_timeouts));
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    const service::ReplicaStatus& r = s.replicas[i];
    std::printf("replica %zu: %s  port %u  incarnation %llu  accepted %llu  "
                "wal %llu  ckpts %llu  recovered-wal %llu\n",
                i,
                r.state == service::ReplicaState::kRunning ? "RUNNING"
                                                           : "DOWN",
                r.port, static_cast<unsigned long long>(r.incarnation),
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.wal_records),
                static_cast<unsigned long long>(r.checkpoints),
                static_cast<unsigned long long>(r.recovered_wal));
  }
  if (s.shard) {
    std::printf("shard %u (map epoch %llu): %llu owned variable(s)",
                s.shard->shard_id,
                static_cast<unsigned long long>(s.shard->epoch),
                static_cast<unsigned long long>(s.shard->total_owned));
    if (!s.shard->owned.empty()) {
      std::printf(" [");
      for (std::size_t i = 0; i < s.shard->owned.size(); ++i)
        std::printf("%s%u", i == 0 ? "" : ", ", s.shard->owned[i]);
      std::printf("%s]",
                  s.shard->owned.size() <
                          static_cast<std::size_t>(s.shard->total_owned)
                      ? ", ..."
                      : "");
    }
    std::printf("\n");
  }
  if (s.total_sessions > 0) {
    std::printf("sessions: %llu%s\n",
                static_cast<unsigned long long>(s.total_sessions),
                s.sessions.size() <
                        static_cast<std::size_t>(s.total_sessions)
                    ? " (highest-lag shown)"
                    : "");
    for (const service::SessionStatus& e : s.sessions)
      std::printf("  %s: acked %llu  lag %llu  backlog %llu  %s%s\n",
                  e.id.c_str(), static_cast<unsigned long long>(e.acked),
                  static_cast<unsigned long long>(e.lag),
                  static_cast<unsigned long long>(e.backlog),
                  e.connected ? "CONNECTED" : "DETACHED",
                  e.evicted ? " EVICTED" : "");
  }
}

// One status line as a JSON object, stable keys, for scraping. `health`
// (optional) is the instance's own health document, appended as a
// "health" key so one `status --json` call carries both views.
void print_status_json(const service::ServiceStatus& s,
                       const std::string* health) {
  std::printf("{\"ingested_datagrams\": %llu, \"displayed\": %llu, "
              "\"subscribers\": %llu, \"dm_ends\": %llu, "
              "\"end_timeouts\": %llu, \"replicas\": [",
              static_cast<unsigned long long>(s.ingested_datagrams),
              static_cast<unsigned long long>(s.displayed),
              static_cast<unsigned long long>(s.subscribers),
              static_cast<unsigned long long>(s.dm_ends),
              static_cast<unsigned long long>(s.end_timeouts));
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    const service::ReplicaStatus& r = s.replicas[i];
    std::printf("%s{\"index\": %zu, \"state\": \"%s\", \"port\": %u, "
                "\"incarnation\": %llu, \"accepted\": %llu, "
                "\"wal_records\": %llu, \"checkpoints\": %llu, "
                "\"recovered_wal\": %llu}",
                i == 0 ? "" : ", ", i,
                r.state == service::ReplicaState::kRunning ? "running"
                                                           : "down",
                r.port, static_cast<unsigned long long>(r.incarnation),
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.wal_records),
                static_cast<unsigned long long>(r.checkpoints),
                static_cast<unsigned long long>(r.recovered_wal));
  }
  std::printf("], \"shard\": ");
  if (s.shard) {
    std::printf("{\"shard_id\": %u, \"epoch\": %llu, "
                "\"total_owned\": %llu, \"owned\": [",
                s.shard->shard_id,
                static_cast<unsigned long long>(s.shard->epoch),
                static_cast<unsigned long long>(s.shard->total_owned));
    for (std::size_t i = 0; i < s.shard->owned.size(); ++i)
      std::printf("%s%u", i == 0 ? "" : ", ", s.shard->owned[i]);
    std::printf("]}");
  } else {
    std::printf("null");
  }
  std::printf(", \"total_sessions\": %llu, \"sessions\": [",
              static_cast<unsigned long long>(s.total_sessions));
  for (std::size_t i = 0; i < s.sessions.size(); ++i) {
    const service::SessionStatus& e = s.sessions[i];
    std::printf("%s{\"id\": \"%s\", \"acked\": %llu, \"framed\": %llu, "
                "\"lag\": %llu, \"backlog\": %llu, \"connected\": %s, "
                "\"evicted\": %s}",
                i == 0 ? "" : ", ", e.id.c_str(),
                static_cast<unsigned long long>(e.acked),
                static_cast<unsigned long long>(e.framed),
                static_cast<unsigned long long>(e.lag),
                static_cast<unsigned long long>(e.backlog),
                e.connected ? "true" : "false",
                e.evicted ? "true" : "false");
  }
  std::printf("]");
  if (health) std::printf(", \"health\": %s", health->c_str());
  std::printf("}\n");
}

// Best-effort instance health fetch for the status --json health block.
// Returns nullopt against a pre-2.3 server (or any failure) so plain
// status keeps working unchanged.
std::optional<std::string> fetch_instance_health_json(std::uint16_t port) {
  try {
    service::AdminRequest req;
    req.command = service::AdminCommand::kHealth;
    req.scope = service::HealthScope::kInstance;
    const service::AdminResponse resp = admin_exchange(port, req);
    if (!resp.ok || !resp.body) return std::nullopt;
    const wire::InstanceHealth doc = wire::decode_instance_health(std::span{
        reinterpret_cast<const std::uint8_t*>(resp.body->data()),
        resp.body->size()});
    return service::instance_health_json(doc);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

int run_admin(service::AdminCommand command, std::uint16_t port,
              std::uint64_t replica, bool json,
              const std::string& out_path) {
  service::AdminRequest req;
  req.command = command;
  req.replica = replica;
  const service::AdminResponse resp = admin_exchange(port, req);
  if (!resp.ok) {
    std::fprintf(stderr, "service error: %s\n", resp.error.c_str());
    if (resp.unsupported) {
      const auto& u = *resp.unsupported;
      std::fprintf(stderr,
                   "server is admin protocol v%u.%u (accepts majors %u..%u, "
                   "commands 0..%u); command %u is not supported\n",
                   static_cast<unsigned>(u.server_version.major),
                   static_cast<unsigned>(u.server_version.minor),
                   static_cast<unsigned>(u.min_major),
                   static_cast<unsigned>(u.max_major),
                   static_cast<unsigned>(u.max_command),
                   static_cast<unsigned>(u.command));
    }
    return 1;
  }
  if (resp.status) {
    if (json) {
      // Machine-readable status grows a health block (admin 2.3); a
      // failed fetch (older server) degrades to the plain document.
      const std::optional<std::string> health =
          command == service::AdminCommand::kStatus
              ? fetch_instance_health_json(port)
              : std::nullopt;
      print_status_json(*resp.status, health ? &*health : nullptr);
    } else {
      print_status(*resp.status);
    }
  } else if (resp.body) {
    if (out_path.empty()) {
      std::fputs(resp.body->c_str(), stdout);
    } else {
      std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
      if (!out.is_open()) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 2;
      }
      out.write(resp.body->data(),
                static_cast<std::streamsize>(resp.body->size()));
      std::fprintf(stderr, "wrote %zu bytes to %s\n", resp.body->size(),
                   out_path.c_str());
    }
  } else {
    std::printf("ok\n");
  }
  return 0;
}

// Fetches health (admin v2.3). Cluster scope (the default) returns the
// aggregated JSON document ready to print; instance scope returns the
// binary wire::InstanceHealth, rendered locally.
int run_health(std::uint16_t port, bool instance) {
  service::AdminRequest req;
  req.command = service::AdminCommand::kHealth;
  req.scope = instance ? service::HealthScope::kInstance
                       : service::HealthScope::kCluster;
  const service::AdminResponse resp = admin_exchange(port, req);
  if (!resp.ok) {
    std::fprintf(stderr, "service error: %s\n", resp.error.c_str());
    return 1;
  }
  if (!resp.body) {
    std::fprintf(stderr, "service returned no health body\n");
    return 1;
  }
  if (instance) {
    const wire::InstanceHealth doc = wire::decode_instance_health(std::span{
        reinterpret_cast<const std::uint8_t*>(resp.body->data()),
        resp.body->size()});
    std::printf("%s\n", service::instance_health_json(doc).c_str());
  } else {
    std::printf("%s\n", resp.body->c_str());
  }
  return 0;
}

// Fetches + decodes the versioned shard map (admin v2.2 `shardmap`).
// Unsharded services answer with a synthetic one-entry map (epoch 0).
int run_shardmap(std::uint16_t port, bool json) {
  service::AdminRequest req;
  req.command = service::AdminCommand::kShardMap;
  const service::AdminResponse resp = admin_exchange(port, req);
  if (!resp.ok) {
    std::fprintf(stderr, "service error: %s\n", resp.error.c_str());
    return 1;
  }
  if (!resp.body) {
    std::fprintf(stderr, "service returned no shard map body\n");
    return 1;
  }
  const wire::ShardMap map = wire::decode_shard_map(std::span{
      reinterpret_cast<const std::uint8_t*>(resp.body->data()),
      resp.body->size()});
  if (json) {
    std::printf("{\"epoch\": %llu, \"shards\": [",
                static_cast<unsigned long long>(map.epoch));
    for (std::size_t i = 0; i < map.shards.size(); ++i) {
      const wire::ShardMapEntry& e = map.shards[i];
      std::printf("%s{\"shard_id\": %u, \"vnodes\": %u, "
                  "\"replica_ports\": [",
                  i == 0 ? "" : ", ", e.shard_id, e.vnodes);
      for (std::size_t j = 0; j < e.replica_ports.size(); ++j)
        std::printf("%s%u", j == 0 ? "" : ", ", e.replica_ports[j]);
      std::printf("]}");
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("shard map epoch %llu, %zu shard(s)\n",
              static_cast<unsigned long long>(map.epoch),
              map.shards.size());
  for (const wire::ShardMapEntry& e : map.shards) {
    std::printf("  shard %u: %u vnode(s), ingest udp", e.shard_id, e.vnodes);
    for (const std::uint16_t p : e.replica_ports) std::printf(" %u", p);
    std::printf("\n");
  }
  return 0;
}

int run_feed(const std::vector<std::uint16_t>& ports, std::size_t updates,
             std::uint64_t seed, double rate) {
  if (ports.empty()) {
    std::fprintf(stderr, "--cmd feed requires --ports\n");
    return 2;
  }
  trace::UniformParams params;
  params.base.var = 0;
  params.base.count = updates;
  params.lo = 0.0;
  params.hi = 100.0;
  util::Rng rng{seed};
  const trace::Trace t = trace::uniform_trace(params, rng);

  net::UdpSocket socket;
  const auto gap =
      rate > 0 ? std::chrono::microseconds{
                     static_cast<long long>(1e6 / rate)}
               : std::chrono::microseconds{0};
  for (const trace::TimedUpdate& tu : t) {
    // Attach the deterministic trace context at the source so a
    // subsequent `--cmd trace-dump` correlates spans across the service.
    const obs::trace::TraceContext ctx{
        obs::trace::derive_trace_id(tu.update.var, tu.update.seqno), 0};
    const auto framed = wire::frame(wire::encode_update(tu.update, ctx));
    for (const std::uint16_t p : ports) socket.send_to(p, framed);
    if (gap.count() > 0) std::this_thread::sleep_for(gap);
  }
  const auto end = wire::frame(net::encode_end_marker(0));
  for (const std::uint16_t p : ports) socket.send_to(p, end);
  std::printf("fed %zu updates (+END) to %zu replica port(s)\n", t.size(),
              ports.size());
  return 0;
}

int run_subscribe(std::uint16_t port) {
  net::TcpStream conn = net::TcpStream::connect(port);
  wire::FrameCursor cursor;
  std::size_t alerts = 0;
  for (;;) {
    auto bytes = conn.read_some(std::chrono::milliseconds{500});
    if (!bytes) continue;
    if (bytes->empty()) break;  // service drained: orderly EOF
    cursor.feed(*bytes);
    while (auto payload = cursor.next()) {
      try {
        const wire::DecodedAlert decoded = wire::decode_alert(*payload);
        ++alerts;
        std::printf("alert %zu: %s\n", alerts, decoded.alert.cond.c_str());
      } catch (const wire::DecodeError&) {
        std::fprintf(stderr, "subscribe: corrupt alert frame\n");
      }
    }
  }
  std::printf("subscription closed after %zu alert(s)\n", alerts);
  return 0;
}

int run_session_subscribe(std::uint16_t port, const std::string& session,
                          std::int64_t from) {
  net::TcpStream conn = net::TcpStream::connect(port);
  wire::SessionHello hello;
  hello.session_id = session;
  if (from >= 0) hello.from = static_cast<std::uint64_t>(from);
  conn.write_all(wire::frame(wire::encode_session_hello(hello)));

  wire::FrameCursor cursor;
  bool welcomed = false;
  std::size_t alerts = 0;
  std::uint64_t last_index = 0;
  bool have_index = false;
  for (;;) {
    auto bytes = conn.read_some(std::chrono::milliseconds{500});
    if (!bytes) continue;
    if (bytes->empty()) break;  // service drained: orderly EOF
    cursor.feed(*bytes);
    while (auto payload = cursor.next()) {
      if (!welcomed) {
        // Live plain-alert frames published before the hello was
        // processed are not part of the session stream; skip them.
        if (!payload->empty() && (*payload)[0] == wire::kSessionWelcomeTag) {
          const auto w = wire::decode_session_welcome(*payload);
          welcomed = true;
          switch (w.status) {
            case wire::SessionWelcomeStatus::kOk:
              std::printf("session %s: replay from %llu (log end %llu)\n",
                          session.c_str(),
                          static_cast<unsigned long long>(w.start_index),
                          static_cast<unsigned long long>(w.log_end));
              break;
            case wire::SessionWelcomeStatus::kTruncated:
              std::printf(
                  "session %s: TRUNCATED, lost alerts [%llu, %llu); "
                  "resuming at %llu\n",
                  session.c_str(),
                  static_cast<unsigned long long>(w.lost_from),
                  static_cast<unsigned long long>(w.lost_to),
                  static_cast<unsigned long long>(w.start_index));
              break;
            case wire::SessionWelcomeStatus::kBadCursor:
              std::printf("session %s: cursor beyond log end %llu; "
                          "resuming live\n",
                          session.c_str(),
                          static_cast<unsigned long long>(w.log_end));
              break;
          }
        }
        continue;
      }
      try {
        const wire::SessionRecord rec = wire::decode_session_record(*payload);
        if (rec.kind == wire::SessionRecord::Kind::kEvicted) {
          std::fprintf(stderr,
                       "session %s: EVICTED at index %llu (lag %llu); "
                       "reconnect for a truncated resume\n",
                       session.c_str(),
                       static_cast<unsigned long long>(rec.index),
                       static_cast<unsigned long long>(rec.lag));
          std::printf("subscription closed after %zu alert(s)\n", alerts);
          return 1;
        }
        ++alerts;
        last_index = rec.index;
        have_index = true;
        std::printf("alert #%llu: %s\n",
                    static_cast<unsigned long long>(rec.index),
                    rec.alert.alert.cond.c_str());
        conn.write_all(
            wire::frame(wire::encode_session_ack(rec.index + 1)));
      } catch (const wire::DecodeError&) {
        std::fprintf(stderr, "subscribe: corrupt session frame\n");
      }
    }
  }
  std::printf("subscription closed after %zu alert(s)%s\n", alerts,
              have_index ? (" (last index " + std::to_string(last_index) +
                            ")").c_str()
                         : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("cmd", "status",
                "status | kill | restart | checkpoint | drain | metrics | "
                "metrics-prom | trace-dump | feed | subscribe | sessions | "
                "shardmap | health");
  args.add_flag("admin-port", "0", "service admin TCP port");
  args.add_flag("replica", "0", "target replica for kill/restart/checkpoint");
  args.add_flag("json", "false", "machine-readable status output");
  args.add_flag("out", "", "write metrics/trace-dump body to this file");
  args.add_flag("ports", "", "comma-separated replica UDP ports (feed)");
  args.add_flag("updates", "1000", "updates to feed");
  args.add_flag("seed", "1", "feeder RNG seed");
  args.add_flag("rate", "0", "feed rate in updates/sec (0 = full speed)");
  args.add_flag("sub-port", "0", "service subscriber TCP port (subscribe)");
  args.add_flag("session", "",
                "durable session id (subscribe); empty = legacy stream");
  args.add_flag("from", "-1",
                "replay from this alert index (subscribe --session); "
                "-1 = resume from the durable cursor");
  args.add_flag("instance", "false",
                "health: this instance's own document instead of the "
                "aggregated cluster view");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  try {
    const std::string cmd = args.get("cmd");
    const auto admin_port =
        static_cast<std::uint16_t>(args.get_int("admin-port"));
    const auto replica = static_cast<std::uint64_t>(args.get_int("replica"));
    const bool json = args.get_bool("json");
    const std::string out = args.get("out");
    if (cmd == "status")
      return run_admin(service::AdminCommand::kStatus, admin_port, replica,
                       json, out);
    if (cmd == "kill")
      return run_admin(service::AdminCommand::kKill, admin_port, replica,
                       json, out);
    if (cmd == "restart")
      return run_admin(service::AdminCommand::kRestart, admin_port, replica,
                       json, out);
    if (cmd == "checkpoint")
      return run_admin(service::AdminCommand::kCheckpoint, admin_port,
                       replica, json, out);
    if (cmd == "drain")
      return run_admin(service::AdminCommand::kDrain, admin_port, replica,
                       json, out);
    if (cmd == "metrics")
      return run_admin(service::AdminCommand::kMetrics, admin_port, replica,
                       json, out);
    if (cmd == "trace-dump")
      return run_admin(service::AdminCommand::kTraceDump, admin_port,
                       replica, json, out);
    if (cmd == "feed")
      return run_feed(parse_ports(args.get("ports")),
                      static_cast<std::size_t>(args.get_int("updates")),
                      static_cast<std::uint64_t>(args.get_int("seed")),
                      args.get_double("rate"));
    if (cmd == "subscribe") {
      const auto sub_port =
          static_cast<std::uint16_t>(args.get_int("sub-port"));
      const std::string session = args.get("session");
      if (!session.empty())
        return run_session_subscribe(
            sub_port, session,
            static_cast<std::int64_t>(args.get_int("from")));
      return run_subscribe(sub_port);
    }
    if (cmd == "sessions")
      return run_admin(service::AdminCommand::kSessions, admin_port, replica,
                       json, out);
    if (cmd == "shardmap") return run_shardmap(admin_port, json);
    if (cmd == "health")
      return run_health(admin_port, args.get_bool("instance"));
    if (cmd == "metrics-prom")
      return run_admin(service::AdminCommand::kMetricsProm, admin_port,
                       replica, json, out);
    std::fprintf(stderr, "unknown --cmd %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcm_service_client: %s\n", e.what());
    return 2;
  }
}
