// rcm::service::AlertService — a long-running replicated alert service
// over the net/ substrate.
//
// Topology (one process, threads as actors):
//
//   DM streams ──UDP──▶ replica worker 0..N-1 ──queue──▶ AD thread ──▶
//     (unbounded)        (DurableReplica each)            filter + fan-out
//                                                            │
//   subscribers ◀──TCP── framed alerts ◀────────────────────┘
//   admin tool  ◀──TCP── framed admin protocol (service/admin.hpp)
//
// Each replica worker owns a DurableReplica (checkpoint + WAL, see
// durable_replica.hpp) and a UDP socket on a port that stays stable
// across restarts, so data managers never re-discover endpoints. A kill
// models a crash: the worker exits without a final checkpoint, its
// socket closes (datagrams sent while down are lost — the paper's lossy
// front link), and its volatile evaluator state is gone. On restart the
// new incarnation recovers checkpoint + WAL, and its durable last-seen
// watermarks make live catch-up safe: replayed state rejects everything
// it already incorporated, so rejoin never violates the AD filter
// guarantees (the filter only ever sees alert streams that are T of
// some update subsequence).
//
// Restarts are driven by a monitor thread using ReplicaSupervisor's
// exponential backoff (admin restart skips the backoff). END-of-stream
// markers from data managers are recorded durably (ends.log) and
// idempotently, so a replica restarted after a DM finished still knows
// the stream ended and drain does not hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <functional>

#include "core/condition.hpp"
#include "core/displayer.hpp"
#include "core/filters.hpp"
#include "net/socket.hpp"
#include "runtime/queue.hpp"
#include "service/admin.hpp"
#include "service/durable_replica.hpp"
#include "service/health.hpp"
#include "service/session.hpp"
#include "service/supervisor.hpp"
#include "wire/codec.hpp"
#include "wire/health.hpp"
#include "wire/shard.hpp"

namespace rcm::service {

/// Shard identity of a service instance hosted by a ShardedCluster
/// (service/shard_cluster.hpp). Purely descriptive at this layer: it
/// rides the kStatus response and names the shard in sessions output.
struct ShardIdentity {
  std::uint32_t shard_id = 0;
  std::uint64_t epoch = 0;  ///< shard-map epoch this instance was built for
};

/// Configuration of one alert service instance.
struct ServiceConfig {
  ConditionPtr condition;            ///< required
  std::size_t num_replicas = 2;
  FilterKind filter = FilterKind::kAd1;
  std::filesystem::path data_dir;    ///< required; created if missing

  std::size_t checkpoint_every = 256;  ///< see DurabilityOptions
  bool record_journal = false;         ///< see DurabilityOptions

  /// Set on instances hosted by a ShardedCluster; reported in status.
  std::optional<ShardIdentity> shard;

  /// Called from the replica worker thread for every update the replica
  /// accepts (after the WAL append + evaluator transition). Shard
  /// instances use this to forward accepted updates to the merge tier.
  /// Must be cheap and must not throw.
  std::function<void(const Update&)> on_accept;

  /// Serves the admin kShardMap command. A ShardedCluster installs the
  /// live cluster map; when unset, an unsharded service answers with a
  /// trivial one-shard map covering all of its replica ports (so a
  /// router pointed at any service always resolves).
  std::function<wire::ShardMap()> shard_map_provider;

  /// Admin ports of every instance in the cluster (including this one),
  /// for cluster-scoped admin kHealth aggregation. A ShardedCluster
  /// installs the live list; when unset, the cluster is this instance.
  std::function<std::vector<std::uint16_t>()> health_endpoints_provider;

  /// Stall-watchdog budgets (service/health.hpp). Degradations surface
  /// in the instance health document and through the dogfooded
  /// `service.watchdog.degraded` condition-language alert.
  WatchdogOptions watchdog;
  /// Turn off to skip the periodic watchdog evaluation entirely
  /// (bench/health_overhead measures exactly this delta).
  bool watchdog_enabled = true;

  /// Monitor thread restarts crashed/killed replicas after backoff.
  /// Turn off for tests that want manual kill/restart control.
  bool auto_restart = true;
  BackoffPolicy backoff;

  wire::AlertEncoding subscriber_encoding =
      wire::AlertEncoding::kFullHistories;

  /// Bounds/budgets of the durable subscriber-session layer
  /// (service/session.hpp): backlog before eviction, in-memory replay
  /// window, lag-alert budget.
  SessionLimits session_limits;

  /// Worker receive timeout: bounds kill/checkpoint reaction latency.
  std::chrono::milliseconds poll_interval{20};
};

/// The service. Thread-safe public interface; owns all worker threads.
/// The destructor drains.
class AlertService {
 public:
  explicit AlertService(ServiceConfig config);
  ~AlertService();
  AlertService(const AlertService&) = delete;
  AlertService& operator=(const AlertService&) = delete;

  // ---- endpoints -------------------------------------------------------
  /// UDP ingest port of replica `i` (stable across restarts).
  [[nodiscard]] std::uint16_t replica_port(std::size_t i) const;
  [[nodiscard]] std::vector<std::uint16_t> replica_ports() const;
  /// TCP port alert subscribers connect to.
  [[nodiscard]] std::uint16_t subscriber_port() const noexcept;
  /// TCP port the admin protocol is served on.
  [[nodiscard]] std::uint16_t admin_port() const noexcept;

  // ---- replica lifecycle ----------------------------------------------
  /// Crashes replica `i`: stops its worker WITHOUT a final checkpoint and
  /// joins it. Blocks until the worker has exited (its socket is closed,
  /// so subsequent datagrams are dropped). With auto_restart the monitor
  /// brings it back after the supervisor's backoff delay.
  void kill_replica(std::size_t i);

  /// Restarts a down replica immediately, skipping any pending backoff.
  /// No-op if the replica is running.
  void restart_replica(std::size_t i);

  /// Asks replica `i`'s worker to checkpoint between datagrams (async;
  /// takes effect within ~poll_interval).
  void request_checkpoint(std::size_t i);

  // ---- service lifecycle ----------------------------------------------
  [[nodiscard]] ServiceStatus status();

  // ---- health ----------------------------------------------------------
  /// This instance's health document: role, per-replica liveness +
  /// heartbeat ages, sampler rates, session lag, and the watchdog's
  /// currently-active degradations. healthy iff no degradation.
  [[nodiscard]] wire::InstanceHealth instance_health();

  /// Alerts raised so far by the dogfooded watchdog CE
  /// (`service.watchdog.degraded`).
  [[nodiscard]] std::vector<Alert> watchdog_alerts() const {
    return watchdog_alerts_.emitted();
  }

  /// Graceful shutdown: stops ingest (each live worker takes a final
  /// checkpoint), drains the alert queue through the filter and fan-out,
  /// closes subscriber connections, stops all threads. Idempotent.
  void drain();

  /// True once an admin kDrain request has been received. The process
  /// hosting the service (rcm_service main) polls/awaits this and then
  /// calls drain() — the admin thread cannot drain synchronously because
  /// drain() joins it.
  [[nodiscard]] bool drain_requested() const noexcept;
  bool await_drain_request(std::chrono::milliseconds timeout);

  // ---- stream bookkeeping ---------------------------------------------
  /// Waits until at least `count` distinct DM END markers have been seen
  /// (across restarts — the set is durable). False on timeout.
  bool await_dm_ends(std::size_t count, std::chrono::milliseconds timeout);

  /// Waits until no datagram was ingested and no alert displayed for a
  /// contiguous `idle` window. False if `timeout` elapses first.
  bool await_idle(std::chrono::milliseconds idle,
                  std::chrono::milliseconds timeout);

  // ---- instrumentation (tests / checkers) ------------------------------
  /// Snapshot of the displayed-alert sequence so far.
  [[nodiscard]] std::vector<Alert> displayed() const;
  /// Snapshot of the AD provenance records so far (one per arrival:
  /// triggering (var, seq) updates, judging filter, verdict + reason).
  [[nodiscard]] std::vector<AlertProvenance> provenance() const;
  /// Replica `i`'s full accepted-update journal across incarnations
  /// (requires record_journal).
  [[nodiscard]] std::vector<Update> replica_journal(std::size_t i) const;
  /// Restarts performed for replica `i` (supervisor + admin).
  [[nodiscard]] std::size_t replica_restarts(std::size_t i) const;

  /// The durable subscriber-session layer: cursors, replay, lag alerts.
  [[nodiscard]] SessionManager& session_manager() noexcept {
    return *sessions_;
  }
  [[nodiscard]] const SessionManager& session_manager() const noexcept {
    return *sessions_;
  }

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct WorkerControl {
    std::atomic<bool> stop{false};
    std::atomic<bool> graceful{false};  ///< checkpoint before exiting
    std::atomic<bool> checkpoint_requested{false};
  };

  struct ReplicaSlot {
    std::uint16_t port = 0;
    /// Socket pre-bound by the constructor for the first incarnation;
    /// later incarnations re-bind `port` themselves.
    std::unique_ptr<net::UdpSocket> pending_socket;
    std::thread thread;
    std::shared_ptr<WorkerControl> ctl;
    bool up = false;  ///< worker started and not yet joined
    std::chrono::steady_clock::time_point up_since{};
    std::chrono::steady_clock::time_point restart_at{};
    std::uint64_t incarnations = 0;
    std::atomic<bool> failed{false};  ///< worker exited on its own
    // Live mirrors the worker publishes for status().
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> wal_records{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> recovered_wal{0};
    /// steady_clock ns of the worker's latest receive-poll iteration;
    /// the stall watchdog ages it. 0 until the incarnation's first loop.
    std::atomic<std::uint64_t> heartbeat_ns{0};
  };

  void worker_loop(std::size_t index, std::shared_ptr<WorkerControl> ctl,
                   std::unique_ptr<net::UdpSocket> socket);
  void displayer_loop();
  void fanout(const Alert& a);
  void acceptor_loop();
  void admin_loop();
  void serve_admin(net::TcpStream& conn);
  [[nodiscard]] AdminResponse dispatch_admin(
      std::span<const std::uint8_t> payload);
  [[nodiscard]] std::string sessions_json() const;
  [[nodiscard]] wire::ShardMap default_shard_map() const;
  void monitor_loop();
  /// Evaluates the stall-watchdog policy now (replica/session/AD
  /// heartbeats, WAL p99) and returns the active degradations.
  [[nodiscard]] std::vector<wire::Degradation> collect_degradations();
  /// Serves the cluster-scoped admin kHealth command: scrapes every
  /// health endpoint (itself directly, peers over TCP) and aggregates.
  [[nodiscard]] std::string cluster_health_json();

  /// Starts a new incarnation of replica `i`. Caller holds lifecycle_mutex_.
  void start_worker_locked(std::size_t i);
  /// Stops and joins replica `i`'s worker. Caller holds lifecycle_mutex_.
  void stop_worker_locked(std::size_t i, bool graceful);

  void note_dm_end(std::size_t dm);
  void load_dm_ends();
  [[nodiscard]] std::filesystem::path ends_path() const;
  [[nodiscard]] DurabilityOptions durability_options() const;
  [[nodiscard]] std::uint64_t activity_counter() const;

  ServiceConfig config_;

  // Lifecycle of replica workers + the monitor's restart schedule.
  mutable std::mutex lifecycle_mutex_;
  std::vector<std::unique_ptr<ReplicaSlot>> slots_;
  ReplicaSupervisor supervisor_;

  runtime::BlockingQueue<Alert> alert_queue_;
  mutable std::mutex display_mutex_;
  AlertDisplayer displayer_;
  std::atomic<std::uint64_t> displayed_count_{0};

  net::TcpListener sub_listener_;
  std::unique_ptr<SessionManager> sessions_;

  net::TcpListener admin_listener_;
  /// Admin connections are served one thread each, so an instance can
  /// answer a peer's health scrape while serving a long exchange (and an
  /// aggregating instance never deadlocks against its own admin port).
  std::mutex admin_conns_mutex_;
  std::vector<std::thread> admin_conn_threads_;

  std::chrono::steady_clock::time_point started_at_{
      std::chrono::steady_clock::now()};
  std::atomic<std::uint64_t> ad_heartbeat_ns_{0};
  WatchdogAlerts watchdog_alerts_;

  // Durable, idempotent END-marker set.
  mutable std::mutex ends_mutex_;
  std::condition_variable ends_cv_;
  std::set<std::size_t> dm_ends_;
  std::ofstream ends_out_;

  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  std::atomic<bool> drain_requested_{false};
  std::mutex drain_request_mutex_;
  std::condition_variable drain_request_cv_;

  std::mutex drain_mutex_;
  bool drain_done_ = false;

  std::thread displayer_thread_;
  std::thread acceptor_thread_;
  std::thread admin_thread_;
  std::thread monitor_thread_;
};

}  // namespace rcm::service
