// rcm::service::ShardedCluster — N AlertService shard instances behind a
// consistent-hash ring, plus a merge tier for cross-shard conditions.
//
// Topology (one process; each box is a full AlertService):
//
//   feeders ──UDP──▶ shard 0..N-1 (PartialCondition over owned vars)
//   (route by map)        │ on_accept: forward accepted updates
//                         ▼
//                    merge tier (full condition + the real AD filter)
//                         │
//   subscribers ◀────TCP──┘  (single-variable conditions skip the merge
//                             tier: the owning shard evaluates directly)
//
// Division of labour (docs/SERVICE.md, "Sharding & resharding"):
//
//   * The ring (ShardRing) partitions VarId-space; the versioned
//     wire::ShardMap (admin v2.2 `shardmap`) tells feeders which replica
//     ports serve which shard. Epochs order layouts.
//   * Shards ADMIT: their PartialCondition accepts exactly the owned
//     variables (journaled + checkpointed through DurableReplica) and
//     never evaluates the global predicate. Accepted updates are
//     forwarded to the merge tier with a skippable origin extension.
//   * The merge tier EVALUATES: a plain AlertService holding the full
//     condition and the real filter. Its CE's per-variable watermarks
//     are the cross-shard holdback — duplicate forwards from R shard
//     replicas, handoff overlap, and stale-owner races all collapse
//     under the paper's out-of-order discard rule. Because the merge
//     tier survives resharding untouched, the AD-5/AD-6 ledgers (and
//     their cross-alert guarantees) span shard moves.
//   * Resharding is targeted crash-recovery: the affected shard stops
//     gracefully (final checkpoint), its per-variable windows +
//     watermarks are extracted into versioned HandoffPackets, receivers
//     rewrite their WAL from retained + received windows (checkpoint
//     deleted — the snapshot codec pins the variable set), and the
//     rebuilt instance cold-recovers through the normal checkpoint+WAL
//     path to exactly the departing CE's state.
//
// Thread-safety: the public interface serializes cluster mutations
// (add/remove shard, drain) behind one mutex; endpoint/oracle accessors
// take the same lock. Per-shard replica kills/restarts go through the
// underlying AlertService, which is thread-safe itself.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "service/alert_service.hpp"
#include "service/shard_ring.hpp"
#include "wire/shard.hpp"

namespace rcm::service {

/// Configuration of a sharded deployment.
struct ShardClusterConfig {
  ConditionPtr condition;  ///< required: the global condition
  FilterKind filter = FilterKind::kAd1;
  std::size_t num_shards = 2;          ///< initial shard count (ids 0..N-1)
  std::size_t replicas_per_shard = 1;
  std::size_t merge_replicas = 1;      ///< cross-shard conditions only
  unsigned vnodes = kDefaultVnodes;
  std::filesystem::path data_dir;      ///< required; created if missing

  std::size_t checkpoint_every = 256;
  bool record_journal = false;
  bool auto_restart = true;
  BackoffPolicy backoff;
  std::chrono::milliseconds poll_interval{20};
  /// Propagated to every instance (shards + merge tier).
  bool watchdog_enabled = true;
  WatchdogOptions watchdog;
};

/// Shard id the merge tier reports in its status (not on the ring).
inline constexpr std::uint32_t kMergeShardId = 0xffffffffu;

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardClusterConfig config);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// True when the condition spans more than one variable — the merge
  /// tier exists exactly in this case.
  [[nodiscard]] bool cross_shard() const noexcept;

  // ---- layout ----------------------------------------------------------
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::vector<std::uint32_t> shard_ids() const;
  [[nodiscard]] wire::ShardMap shard_map() const;
  /// Owner shard of `var` under the current ring.
  [[nodiscard]] std::uint32_t owner(VarId var) const;

  /// The live service instance of shard `shard_id` (throws on unknown).
  [[nodiscard]] AlertService& shard(std::uint32_t shard_id);
  /// The merge tier; nullptr for single-variable conditions.
  [[nodiscard]] AlertService* merge();
  /// The instance whose AD filter produces the displayed stream: the
  /// merge tier when cross-shard, else the owner of the single variable.
  [[nodiscard]] AlertService& evaluating_service();

  // ---- resharding ------------------------------------------------------
  /// Adds a shard: bumps the epoch, rebuilds every shard whose owned
  /// set changed, handing durable per-variable state to the new owners.
  void add_shard(std::uint32_t shard_id);
  /// Removes a shard (its variables hand off to the survivors). Throws
  /// std::invalid_argument when it is the last shard or unknown.
  void remove_shard(std::uint32_t shard_id);

  // ---- lifecycle -------------------------------------------------------
  /// Graceful shutdown of every instance: shards first (their final
  /// forwards land), then the merge tier. Idempotent.
  void drain();
  /// True once any instance received an admin kDrain request.
  [[nodiscard]] bool drain_requested() const;
  /// Waits until every live instance reports an idle window.
  bool await_idle(std::chrono::milliseconds idle,
                  std::chrono::milliseconds timeout);

  // ---- oracle-facing instrumentation -----------------------------------
  /// Displayed alerts across all displayer incarnations, in epoch order
  /// (retired evaluating instances first, then the live one).
  [[nodiscard]] std::vector<Alert> displayed() const;
  [[nodiscard]] std::vector<AlertProvenance> provenance() const;
  /// Prefix lengths partitioning displayed() into displayer
  /// incarnations (see swarm::check_service_run).
  [[nodiscard]] std::vector<std::size_t> displayer_epochs() const;
  /// Every journal across the cluster: all replicas of every shard dir
  /// the cluster ever used (including removed shards — their files
  /// survive) plus the merge tier's (requires record_journal).
  [[nodiscard]] std::vector<std::vector<Update>> journals() const;

  [[nodiscard]] const ShardClusterConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ShardSlot {
    std::uint32_t shard_id = 0;
    std::filesystem::path dir;
    std::vector<std::uint16_t> ports;  ///< stable across rebuilds
    std::unique_ptr<AlertService> service;
  };

  [[nodiscard]] ConditionPtr condition_for_locked(
      std::uint32_t shard_id) const;
  [[nodiscard]] FilterKind filter_for_locked(std::uint32_t shard_id) const;
  void build_shard_locked(ShardSlot& slot);
  /// Stops `slot`'s service, folding its displayed/provenance stream
  /// into the retired accumulators when it was the evaluating instance.
  void retire_shard_locked(ShardSlot& slot, bool evaluating);
  void reshard_locked(const ShardRing& new_ring, std::uint64_t new_epoch);
  [[nodiscard]] wire::ShardMap shard_map_locked() const;
  /// Publishes the current layout to the cache admin threads read.
  void refresh_map_locked();
  [[nodiscard]] AlertService& evaluating_service_locked();
  [[nodiscard]] const AlertService& evaluating_service_locked() const;

  ShardClusterConfig config_;

  mutable std::mutex mutex_;
  ShardRing ring_;
  std::uint64_t epoch_ = 1;
  std::map<std::uint32_t, ShardSlot> shards_;   // live shards, by id
  std::unique_ptr<AlertService> merge_;
  std::unique_ptr<net::UdpSocket> forward_socket_;
  std::vector<std::uint16_t> merge_ports_;

  /// Copy of the current map served to admin `shardmap` requests. Its
  /// own lock: shard admin threads read it while a reshard (holding
  /// mutex_) joins those very threads — routing them through mutex_
  /// would deadlock.
  mutable std::mutex map_mutex_;
  wire::ShardMap cached_map_;
  /// Admin ports of every live instance (shards + merge tier), refreshed
  /// with the map; served to instances as their health_endpoints_provider
  /// so any one of them can aggregate cluster health.
  std::vector<std::uint16_t> cached_health_endpoints_;

  /// Dirs of every shard that ever existed (journals outlive removal):
  /// shard id → data dir.
  std::map<std::uint32_t, std::filesystem::path> all_shard_dirs_;

  /// Displayed/provenance streams of retired evaluating instances, with
  /// per-incarnation prefix lengths.
  std::vector<Alert> retired_displayed_;
  std::vector<AlertProvenance> retired_provenance_;
  std::vector<std::size_t> retired_epochs_;

  bool drained_ = false;
};

}  // namespace rcm::service
