#include "service/durable_replica.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wire/frame.hpp"
#include "wire/snapshot.hpp"

namespace rcm::service {
namespace {

std::string replica_stem(std::size_t index) {
  return "ce" + std::to_string(index);
}

}  // namespace

std::filesystem::path DurableReplica::checkpoint_path(
    const std::filesystem::path& dir, std::size_t index) {
  return dir / (replica_stem(index) + ".ckpt");
}

std::filesystem::path DurableReplica::wal_path(
    const std::filesystem::path& dir, std::size_t index) {
  return dir / (replica_stem(index) + ".wal");
}

std::filesystem::path DurableReplica::journal_path(
    const std::filesystem::path& dir, std::size_t index) {
  return dir / (replica_stem(index) + ".journal");
}

std::vector<Update> DurableReplica::read_journal(
    const std::filesystem::path& dir, std::size_t index) {
  return store::recover_updates(journal_path(dir, index)).updates;
}

DurableReplica::DurableReplica(ConditionPtr condition, std::size_t index,
                               DurabilityOptions opts)
    : condition_(std::move(condition)),
      index_(index),
      opts_(std::move(opts)),
      ce_(condition_, "CE" + std::to_string(index + 1)) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    RCM_SCOPED_TIMER(timer, "service.recovery.seconds");

    // 1. Latest checkpoint, if any survives a CRC check. A torn tail or
    // a corrupt frame means the checkpoint write itself crashed; the
    // rename protocol makes that unlikely, but the WAL of the previous
    // checkpoint epoch would then still be on disk, so falling back to
    // a cold evaluator remains correct, only slower.
    std::ifstream ckpt{checkpoint_path(opts_.dir, index_), std::ios::binary};
    if (ckpt.is_open()) {
      std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(ckpt),
                                      std::istreambuf_iterator<char>()};
      wire::FrameCursor cursor;
      cursor.feed(bytes);
      cursor.finish();
      while (auto payload = cursor.next()) {
        try {
          wire::decode_evaluator_state(*payload, ce_);
          recovery_.had_checkpoint = true;
        } catch (const wire::DecodeError&) {
          ++recovery_.corrupt_frames;
        }
      }
      recovery_.corrupt_frames += cursor.corrupt_frames();
    }

    // 2. WAL replay over it. replay_update both rebuilds state and
    // deduplicates: records already covered by the checkpoint (a crash
    // between checkpoint rename and WAL truncate leaves them behind)
    // fail the watermark test and are skipped.
    store::RecoveredUpdates wal = store::recover_updates(
        wal_path(opts_.dir, index_));
    recovery_.corrupt_frames += wal.corrupt_frames;
    for (const Update& u : wal.updates) {
      if (ce_.replay_update(u)) ++recovery_.wal_replayed;
    }
  }

  wal_ = std::make_unique<store::FileUpdateLog>(wal_path(opts_.dir, index_));
  if (opts_.record_journal) {
    journal_ = std::make_unique<store::FileUpdateLog>(
        journal_path(opts_.dir, index_));
  }

  // Compact what we just replayed so the NEXT restart is a pure
  // checkpoint load.
  if (recovery_.wal_replayed > 0) checkpoint();

  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  recovery_.seconds = dt.count();
}

std::optional<Alert> DurableReplica::on_update(const Update& u) {
  if (!ce_.would_accept(u)) {
    // Stale or foreign-variable update: the paper's out-of-order discard
    // (and, after a restart, the dedup that makes live catch-up safe).
    RCM_COUNT("service.ingest.stale_dropped");
    return std::nullopt;
  }
  {
    RCM_TRACE_SPAN(span, "wal.append");
    span.var(u.var).seq(u.seqno);
    // The watchdog's flush-latency source: p99 of this timer over the
    // wal_p99_budget becomes a kWalFlushSlow degradation.
    RCM_SCOPED_TIMER(timer, "service.wal.append.seconds");
    wal_->append(u);
  }
  RCM_COUNT("service.wal.appends");
  if (journal_) journal_->append(u);
  std::optional<Alert> alert = ce_.on_update(u);
  ++accepted_live_;
  if (opts_.checkpoint_every > 0 &&
      ++since_checkpoint_ >= opts_.checkpoint_every) {
    checkpoint();
  }
  return alert;
}

void DurableReplica::write_checkpoint_file() {
  const std::filesystem::path final_path = checkpoint_path(opts_.dir, index_);
  const std::filesystem::path tmp_path =
      final_path.parent_path() / (final_path.filename().string() + ".tmp");
  const auto framed = wire::frame(wire::encode_evaluator_state(ce_));
  {
    std::ofstream out{tmp_path, std::ios::binary | std::ios::trunc};
    if (!out.is_open())
      throw std::runtime_error("DurableReplica: cannot open " +
                               tmp_path.string());
    out.write(reinterpret_cast<const char*>(framed.data()),
              static_cast<std::streamsize>(framed.size()));
    out.flush();
    if (!out.good())
      throw std::runtime_error("DurableReplica: checkpoint write failed on " +
                               tmp_path.string());
  }
  std::filesystem::rename(tmp_path, final_path);
}

void DurableReplica::checkpoint() {
  RCM_SCOPED_TIMER(timer, "service.checkpoint.seconds");
  write_checkpoint_file();
  wal_->truncate();  // everything it held is now inside the checkpoint
  since_checkpoint_ = 0;
  ++checkpoints_;
  RCM_COUNT("service.checkpoints");
}

}  // namespace rcm::service
