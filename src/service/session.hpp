// rcm::service::SessionManager — the durable session layer behind the
// alert service's subscriber fan-out, modeled on BDR replication slots.
//
// Every AD-accepted alert is durably appended to a versioned alert log
// (store/file_log.hpp record format, data_dir/alerts.log) and buffered
// in a bounded in-memory retention window of pre-encoded wire bytes.
// Each subscriber session owns a durable cursor (session id → last-acked
// index, data_dir/cursors.log, wire/session.hpp format): a reconnecting
// subscriber presents its id + first wanted index and gets exact,
// gap-free replay from the window before rejoining the live stream.
//
// Fan-out is one readiness-driven event-loop thread over non-blocking
// sockets: publish() (called from the AD thread) only appends to the log
// and wakes the loop, so one stalled TCP peer can never stall the AD or
// any other session. Per-session send state is a cursor into the shared
// window plus a frame-aligned partial-write buffer, so a torn frame on a
// dying connection consumes nothing: the session's last fully-framed
// index is recorded and replay after reconnect is exact.
//
// Slow consumers are bounded, observable, and never silently dropped:
//   - backlog (entries not yet handed to the kernel) beyond
//     `max_backlog`, or a send cursor that falls out of the retention
//     window, triggers deterministic evict-and-mark — the peer gets a
//     typed 'E' evicted notice and the durable cursor is marked;
//   - an evicted (or window-outrun) session that reconnects gets a
//     typed SessionTruncated welcome naming the exact lost range;
//   - per-session lag (log end − acked) feeds the
//     `service.session.lag` histogram, and crossing `lag_alert_budget`
//     raises a condition-language alert (`service.session.lag_exceeded`,
//     dogfooded through an ordinary CE exactly like the availability
//     probe's latency alert).
//
// Legacy compatibility: a connection that never sends a session hello is
// served the pre-session protocol — plain framed alerts from its
// adoption point, byte-identical to the cursorless subscriber stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/alert.hpp"
#include "core/evaluator.hpp"
#include "net/socket.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/session.hpp"

namespace rcm::service {

/// Bounds and budgets of the session layer.
struct SessionLimits {
  /// Entries a connected session may leave unsent before eviction.
  std::size_t max_backlog = 4096;
  /// Log entries kept replayable in memory (floored to cover
  /// max_backlog; the durable log keeps everything).
  std::size_t retention = 8192;
  /// Lag (log end − acked) at which the dogfooded condition-language
  /// alert fires for a session; 0 disables the alert.
  std::uint64_t lag_alert_budget = 2048;
};

/// Point-in-time view of one session, for admin/status.
struct SessionInfo {
  std::string id;
  std::uint64_t acked = 0;    ///< durable cursor: entries [0, acked) acked
  std::uint64_t framed = 0;   ///< entries [0, framed) fully written to a peer
  std::uint64_t lag = 0;      ///< log_end − acked
  std::uint64_t backlog = 0;  ///< entries not yet handed to the kernel
  bool connected = false;
  bool evicted = false;
};

class SessionManager {
 public:
  SessionManager(std::filesystem::path data_dir,
                 wire::AlertEncoding encoding, SessionLimits limits);
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Hands a freshly accepted subscriber connection to the event loop.
  /// The connection starts in legacy mode (live plain-alert stream) and
  /// upgrades to a session when it sends a hello frame.
  void adopt(net::TcpStream stream);

  /// Durably appends one displayed alert and schedules fan-out. Called
  /// from the AD thread; never blocks on any subscriber socket.
  void publish(const Alert& a);

  /// Flushes pending session traffic (until `flush_deadline`), FINs all
  /// connections and joins the event loop. Idempotent.
  void stop(std::chrono::milliseconds flush_deadline);

  // ---- introspection ---------------------------------------------------
  [[nodiscard]] std::vector<SessionInfo> sessions() const;
  [[nodiscard]] std::size_t connections() const;
  [[nodiscard]] std::uint64_t log_end() const;
  [[nodiscard]] std::uint64_t published() const noexcept;
  /// Alerts raised by the dogfooded per-session lag CE so far.
  [[nodiscard]] std::vector<Alert> lag_alerts() const;
  /// Sessions recovered from the cursor file at construction.
  [[nodiscard]] std::size_t recovered_sessions() const noexcept {
    return recovered_sessions_;
  }
  /// steady_clock nanoseconds of the event loop's latest iteration — the
  /// heartbeat the stall watchdog ages. 0 until the loop first runs.
  [[nodiscard]] std::uint64_t last_tick_ns() const noexcept {
    return last_tick_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    net::TcpStream stream;
    wire::FrameCursor in;
    /// Outbound bytes not yet accepted by the kernel; `out_off` is the
    /// consumed prefix. Session frames are appended whole, so the
    /// boundary bookkeeping below can name every fully-sent frame.
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    /// (end offset in `out`, alert index) per pending session frame;
    /// popped as `out_off` passes each boundary.
    std::deque<std::pair<std::size_t, std::uint64_t>> frame_ends;
    bool legacy = true;       ///< no hello yet: plain live alert frames
    std::string session;      ///< non-empty once upgraded
    std::uint64_t next_index = 0;  ///< next log entry to frame (session)
    bool closing = false;     ///< flush `out`, then FIN and drop

    explicit Conn(net::TcpStream s) : stream(std::move(s)) {}
  };

  struct Session {
    wire::CursorEntry cursor;  ///< durable: acked + evicted mark
    std::uint64_t framed = 0;  ///< last fully-framed index + 1 (volatile)
    bool lag_alerted = false;  ///< edge-trigger latch for the lag CE
    Conn* conn = nullptr;      ///< live connection, if any
  };

  void loop();
  /// All helpers below run with mutex_ held.
  void fill_conn_locked(Conn& conn);
  void handle_readable_locked(Conn& conn);
  void handle_hello_locked(Conn& conn, const wire::SessionHello& hello);
  void note_progress_locked(Conn& conn);
  void drop_conn_locked(std::list<Conn>::iterator it);
  void evict_locked(Conn& conn, std::uint64_t lag);
  void check_lag_locked(const std::string& id, Session& session);
  void append_durable_locked(const Alert& a);
  void write_cursor_locked(const std::string& id);
  void compact_cursors_locked();
  [[nodiscard]] std::uint64_t window_base_locked() const noexcept {
    return end_ - window_.size();
  }

  std::filesystem::path data_dir_;
  wire::AlertEncoding encoding_;
  SessionLimits limits_;

  mutable std::mutex mutex_;
  // Durable alert log (append side) + bounded in-memory replay window of
  // pre-encoded subscriber-wire bytes. `end_` is the next index.
  std::ofstream log_out_;
  std::deque<std::vector<std::uint8_t>> window_;
  std::uint64_t end_ = 0;

  // Durable cursor file (append side) + compaction bookkeeping.
  std::ofstream cursor_out_;
  std::size_t cursor_records_ = 0;

  std::map<std::string, Session> sessions_;
  std::list<Conn> conns_;
  std::list<Conn> pending_;  ///< adopted, not yet picked up by the loop

  // Dogfooded "slot falling behind" CE (probe.hpp pattern).
  VariableRegistry lag_vars_;
  VarId lag_var_ = 0;
  std::optional<ConditionEvaluator> lag_ce_;
  SeqNo lag_seq_ = 0;
  std::vector<Alert> lag_alerts_;

  std::size_t recovered_sessions_ = 0;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> last_tick_ns_{0};

  net::WakePipe wake_;
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point flush_deadline_{};
  std::thread loop_thread_;
  std::mutex stop_mutex_;
  bool stopped_ = false;
};

}  // namespace rcm::service
