#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace rcm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string fmt_property(bool guaranteed) { return guaranteed ? "yes" : "NO"; }

}  // namespace rcm::util
