#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rcm::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Percentiles::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

}  // namespace rcm::util
