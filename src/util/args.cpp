#include "util/args.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rcm::util {

void Args::add_flag(const std::string& name, const std::string& default_value,
                    const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

bool Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + arg;
      return false;
    }
    if (!has_value) {
      // Bare flag: boolean true, unless the next token is a value.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string Args::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::invalid_argument("flag not registered: --" + name);
  return it->second.value;
}

std::int64_t Args::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Args::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_value << ")\n"
        << "      " << flag.help << '\n';
  }
  return out.str();
}

}  // namespace rcm::util
