// Small statistics accumulators used by benches and experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace rcm::util {

/// Streaming accumulator for count / mean / variance / min / max.
/// Uses Welford's online algorithm, so it is numerically stable even for
/// long benchmark runs.
class Accumulator {
 public:
  /// Folds one observation into the running statistics.
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio counter: successes over trials, e.g. "alerts delivered / alerts
/// expected" in the availability bench.
class Ratio {
 public:
  void add(bool success) noexcept {
    ++trials_;
    if (success) ++hits_;
  }
  void add(std::size_t hits, std::size_t trials) noexcept {
    hits_ += hits;
    trials_ += trials;
  }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  /// Fraction in [0,1]; 0 when no trials recorded.
  [[nodiscard]] double value() const noexcept {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(hits_) / static_cast<double>(trials_);
  }

 private:
  std::size_t hits_ = 0;
  std::size_t trials_ = 0;
};

/// Exact percentile over a stored sample (nearest-rank). Benches use it for
/// latency distributions; sample sizes there are small enough that storing
/// every observation is fine.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;  // a past query's sort is stale now
  }
  /// q in [0,1]; returns 0 for an empty sample.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace rcm::util
