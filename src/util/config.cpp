#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rcm::util {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config config;
  config.section_order_.push_back("");
  config.sections_[""];

  std::string current;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments (a '#' anywhere outside a value is fine; we keep it
    // simple: '#' starts a comment unless escaped use isn't supported).
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']')
        throw ConfigError("unterminated section header", line_no);
      const std::string name{trim(line.substr(1, line.size() - 2))};
      if (name.empty()) throw ConfigError("empty section name", line_no);
      if (!config.sections_.count(name))
        config.section_order_.push_back(name);
      config.sections_[name];
      current = name;
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("expected 'key = value' or '[section]'", line_no);
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) throw ConfigError("empty key", line_no);
    auto& section = config.sections_[current];
    if (!section.emplace(key, value).second)
      throw ConfigError("duplicate key '" + key + "' in section [" +
                            current + "]",
                        line_no);
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in{path};
  if (!in.is_open())
    throw std::runtime_error("Config::load: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Config::has_section(const std::string& section) const {
  return sections_.count(section) != 0;
}

bool Config::has(const std::string& section, const std::string& key) const {
  return find(section, key).has_value();
}

std::optional<std::string> Config::find(const std::string& section,
                                        const std::string& key) const {
  auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string Config::get_or(const std::string& section, const std::string& key,
                           const std::string& fallback) const {
  return find(section, key).value_or(fallback);
}

std::int64_t Config::get_int_or(const std::string& section,
                                const std::string& key,
                                std::int64_t fallback) const {
  const auto v = find(section, key);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Config::get_double_or(const std::string& section,
                             const std::string& key, double fallback) const {
  const auto v = find(section, key);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Config::get_bool_or(const std::string& section, const std::string& key,
                         bool fallback) const {
  const auto v = find(section, key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::string Config::require(const std::string& section,
                            const std::string& key) const {
  const auto v = find(section, key);
  if (!v)
    throw std::invalid_argument("missing required config key [" + section +
                                "] " + key);
  return *v;
}

}  // namespace rcm::util
