// Deterministic, fast pseudo-random number generation for simulations.
//
// Every stochastic component in rcm (lossy links, delay models, workload
// generators, fault injectors) draws from an rcm::util::Rng seeded explicitly
// by the experiment harness, so that every run is reproducible bit-for-bit.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that correlated small seeds (0, 1, 2, ...) still yield
// well-mixed, statistically independent streams.
#pragma once

#include <cstdint>
#include <limits>

namespace rcm::util {

/// Mixes a 64-bit value; used to expand user seeds into generator state.
/// This is the finalizer of the splitmix64 generator.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the std UniformRandomBitGenerator requirements, so it can also
/// be handed to `<random>` distributions, though the member helpers below
/// cover everything the library itself needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is a pure function of `seed`.
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Re-initializes the stream from `seed`; equivalent to constructing anew.
  void reseed(std::uint64_t seed) noexcept;

  /// Returns the next raw 64-bit output.
  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal variate (Box-Muller, one value per call).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential variate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Derives an independent child generator; the pair (parent seed, salt)
  /// fully determines the child stream. Used to give each simulated link
  /// and each Monte-Carlo trial its own stream.
  ///
  /// NOTE: fork() advances the parent stream, so forked children depend
  /// on how many draws (and forks) preceded them. For batch work items
  /// that must be derivable out of order — e.g. run i of a swarm batch
  /// executed on any worker thread — use the stateless derive() instead.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  /// Stateless per-run stream derivation: the stream for work item
  /// `index` of a batch seeded with `seed`, as a pure function of the
  /// pair. Bit-compatible with `Rng{seed}.fork(index + 1)` — the
  /// derivation the swarm fuzzer has always used — so parallel executors
  /// sharding a batch across threads sample exactly the runs the serial
  /// executor would.
  [[nodiscard]] static Rng derive(std::uint64_t seed,
                                  std::uint64_t index) noexcept;

 private:
  std::uint64_t s_[4]{};
};

}  // namespace rcm::util
