// Plain-text table rendering for bench output.
//
// The benches reproduce the paper's Tables 1-3 (and the variants stated in
// prose); this printer renders them side by side with the measured results
// in aligned monospace columns.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcm::util {

/// Column-aligned text table. Cells are strings; the renderer pads every
/// column to its widest cell and draws a rule under the header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row. Rows shorter than the header are padded with empty
  /// cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  /// Renders the table with two-space column gutters.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt_double(double v, int digits = 3);

/// Formats a probability/fraction as a percentage string, e.g. "12.5%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);

/// Renders a boolean property cell the way the paper's tables do:
/// a check mark for "guaranteed", an X for "not guaranteed".
[[nodiscard]] std::string fmt_property(bool guaranteed);

}  // namespace rcm::util
