// Minimal INI-style configuration parser for the lab/example binaries.
//
//   # comments and blank lines are ignored
//   [section]
//   key = value            # values keep internal spaces, trimmed at ends
//
// Keys before any section header live in the "" (global) section.
// Duplicate keys within a section are an error (silently shadowed
// configs are a debugging tax no one should pay).
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rcm::util {

/// Thrown on malformed config text; `line()` is 1-based.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parsed configuration: sections of key/value pairs.
class Config {
 public:
  /// Parses config text; throws ConfigError on malformed input.
  [[nodiscard]] static Config parse(std::string_view text);

  /// Loads and parses a file; throws std::runtime_error on I/O errors.
  [[nodiscard]] static Config load(const std::string& path);

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;

  /// Raw lookup; nullopt if missing.
  [[nodiscard]] std::optional<std::string> find(const std::string& section,
                                                const std::string& key) const;

  /// Typed getters with defaults. The *_or forms return the default when
  /// the key is missing; the require forms throw std::invalid_argument.
  [[nodiscard]] std::string get_or(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& section,
                                        const std::string& key,
                                        std::int64_t fallback) const;
  [[nodiscard]] double get_double_or(const std::string& section,
                                     const std::string& key,
                                     double fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& section,
                                 const std::string& key, bool fallback) const;
  [[nodiscard]] std::string require(const std::string& section,
                                    const std::string& key) const;

  /// Section names in file order (the lab uses this to find every
  /// section whose name starts with "workload").
  [[nodiscard]] const std::vector<std::string>& sections() const noexcept {
    return section_order_;
  }

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
  std::vector<std::string> section_order_;
};

}  // namespace rcm::util
