// Minimal command-line flag parser for the example and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus bare boolean flags
// (`--verbose`). Unknown flags are an error so typos do not silently run a
// different experiment than intended.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcm::util {

/// Declarative flag set: register flags with defaults, then parse argv.
class Args {
 public:
  /// Registers a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (and fills `error()`) on unknown flags or a
  /// missing value. `--help` sets `help_requested()` and returns true.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Renders the registered flags with defaults and help strings.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  bool help_ = false;
  std::string error_;
};

}  // namespace rcm::util
