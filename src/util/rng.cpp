#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace rcm::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  // Mix the parent stream with the salt so distinct salts give
  // independent child streams, while keeping determinism.
  std::uint64_t state = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(state)};
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t index) noexcept {
  Rng master{seed};
  return master.fork(index + 1);
}

}  // namespace rcm::util
