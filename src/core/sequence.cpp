#include "core/sequence.hpp"

#include <algorithm>
#include <map>

namespace rcm {

bool is_ordered(std::span<const SeqNo> s) noexcept {
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] < s[i - 1]) return false;
  return true;
}

bool is_subsequence(std::span<const SeqNo> a,
                    std::span<const SeqNo> b) noexcept {
  std::size_t i = 0;
  for (std::size_t j = 0; i < a.size() && j < b.size(); ++j)
    if (a[i] == b[j]) ++i;
  return i == a.size();
}

std::vector<SeqNo> ordered_union(std::span<const SeqNo> a,
                                 std::span<const SeqNo> b) {
  std::vector<SeqNo> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  auto push = [&](SeqNo s) {
    if (out.empty() || out.back() != s) out.push_back(s);
  };
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j])
      push(a[i++]);
    else
      push(b[j++]);
  }
  while (i < a.size()) push(a[i++]);
  while (j < b.size()) push(b[j++]);
  return out;
}

std::vector<Update> ordered_union(std::span<const Update> a,
                                  std::span<const Update> b) {
  std::vector<Update> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  auto push = [&](const Update& u) {
    if (out.empty() || out.back().seqno != u.seqno) out.push_back(u);
  };
  while (i < a.size() && j < b.size()) {
    if (a[i].seqno <= b[j].seqno)
      push(a[i++]);
    else
      push(b[j++]);
  }
  while (i < a.size()) push(a[i++]);
  while (j < b.size()) push(b[j++]);
  return out;
}

std::vector<SeqNo> project(std::span<const Update> u, VarId x) {
  std::vector<SeqNo> out;
  for (const Update& up : u)
    if (up.var == x) out.push_back(up.seqno);
  return out;
}

std::vector<SeqNo> project(std::span<const Alert> a, VarId x) {
  std::vector<SeqNo> out;
  for (const Alert& al : a)
    if (al.histories.count(x)) out.push_back(al.seqno(x));
  return out;
}

bool is_ordered(std::span<const Update> u, VarId x) {
  const auto proj = project(u, x);
  return is_ordered(std::span<const SeqNo>{proj});
}

bool is_ordered(std::span<const Alert> a, VarId x) {
  const auto proj = project(a, x);
  return is_ordered(std::span<const SeqNo>{proj});
}

std::vector<std::pair<VarId, std::vector<Update>>> split_by_var(
    std::span<const Update> u) {
  std::map<VarId, std::vector<Update>> byvar;
  for (const Update& up : u) byvar[up.var].push_back(up);
  return {byvar.begin(), byvar.end()};
}

}  // namespace rcm
