#include "core/multi_condition.hpp"

#include <stdexcept>

namespace rcm {

void ConditionRouter::add_condition(const std::string& cond,
                                    FilterPtr filter) {
  if (!filter)
    throw std::invalid_argument("ConditionRouter: null filter");
  filters_[cond] = std::move(filter);
}

bool ConditionRouter::on_alert(const Alert& a) {
  ++arrived_;
  auto it = filters_.find(a.cond);
  if (it == filters_.end()) {
    if (unknown_ == UnknownPolicy::kDrop) return false;
    displayed_.push_back(a);
    return true;
  }
  if (!it->second->offer(a)) return false;
  displayed_.push_back(a);
  return true;
}

std::vector<Alert> ConditionRouter::displayed_for(
    const std::string& cond) const {
  std::vector<Alert> out;
  for (const Alert& a : displayed_)
    if (a.cond == cond) out.push_back(a);
  return out;
}

void ConditionRouter::reset() {
  for (auto& [cond, filter] : filters_) filter->reset();
  displayed_.clear();
  arrived_ = 0;
}

}  // namespace rcm
