// Update histories (paper §2).
//
// A condition of degree N with respect to variable x is evaluated over
// Hx = <Hx[0], Hx[-1], ..., Hx[-(N-1)]>, the N most recently *received*
// x-updates. Hx is undefined until N updates have been received; the CE
// does not evaluate the condition while any referenced history is
// undefined.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/types.hpp"

namespace rcm {

/// Fixed-capacity ring of the most recent updates of one variable.
///
/// Indexing follows the paper: at(0) is the most recent update, at(-1) the
/// one received before it, down to at(-(degree()-1)).
class History {
 public:
  /// Creates a history of the given degree (capacity). Degree must be >= 1.
  explicit History(int degree);

  /// Pushes a newly received update, evicting the oldest if full.
  void push(const Update& u);

  /// Number of updates currently held (<= degree()).
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Capacity N the history was created with.
  [[nodiscard]] int degree() const noexcept { return degree_; }

  /// True once `degree()` updates have been received; the paper calls the
  /// history "defined" from this point on.
  [[nodiscard]] bool defined() const noexcept {
    return buf_.size() == static_cast<std::size_t>(degree_);
  }

  /// H[i] for i in (-(degree-1)) .. 0. Precondition: -i < size().
  [[nodiscard]] const Update& at(int i) const;

  /// Sequence numbers oldest-to-newest, e.g. {1,3} for H = <3x, 1x>.
  /// Useful for fingerprints and the AD-3 Received/Missed bookkeeping.
  [[nodiscard]] std::vector<SeqNo> seqnos_ascending() const;

  /// True if the held sequence numbers are consecutive integers, i.e. the
  /// CE observed no loss inside this window. Conservative conditions
  /// require this (paper: conditions "detect the loss of an update").
  [[nodiscard]] bool consecutive() const noexcept;

  /// Drops all stored updates (used when a simulated CE crashes and loses
  /// its volatile state).
  void clear() noexcept { buf_.clear(); }

 private:
  int degree_;
  std::vector<Update> buf_;  // oldest first; size <= degree_
};

/// The set H of update histories a condition is defined on: one History
/// per variable in the condition's variable set V.
class HistorySet {
 public:
  /// Creates an empty history of degree `degree` for variable `v`.
  /// Re-adding an existing variable with a larger degree widens it.
  void add_variable(VarId v, int degree);

  /// Routes an update into the history of its variable. Updates of
  /// variables not in the set are ignored (the CE only subscribes to V,
  /// but defensive filtering keeps misrouted traffic harmless).
  void push(const Update& u);

  [[nodiscard]] bool contains(VarId v) const;

  /// History of variable v. Precondition: contains(v).
  [[nodiscard]] const History& of(VarId v) const;

  /// True when every variable's history is defined; only then may the
  /// condition be evaluated.
  [[nodiscard]] bool all_defined() const noexcept;

  /// Variables in deterministic (ascending id) order.
  [[nodiscard]] std::vector<VarId> variables() const;

  void clear() noexcept;

 private:
  std::map<VarId, History> histories_;
};

}  // namespace rcm
