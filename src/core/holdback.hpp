// The "delayed displaying" alternative of §4.2, as an implemented
// extension.
//
// Instead of discarding out-of-order alerts (AD-2), the AD can hold each
// alert back for a timeout t and release buffered alerts in sequence
// number order, hoping stragglers arrive within t. The paper points out
// the flaw: "unless system delays are bounded, orderedness is no longer
// guaranteed when the AD is forced to display an alert on timeout" — and
// declines to pursue it. We implement it anyway, as the paper-adjacent
// ablation: bench/holdback quantifies exactly the trade-off the paper
// describes (larger t -> fewer order violations but more display
// latency; any finite t -> orderedness is probabilistic, unlike AD-2's
// guarantee; nothing is ever dropped, unlike AD-2's incompleteness).
//
// The reorder buffer is time-driven, so unlike AlertFilter this class
// takes explicit `now` values and reports a next-deadline for the caller
// (simulator or event loop) to schedule around.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "core/alert.hpp"
#include "core/types.hpp"

namespace rcm {

/// Reorder-buffer displayer for single-variable alert streams.
class HoldbackDisplayer {
 public:
  /// `timeout` is the hold-back time per alert, in the caller's time
  /// unit; must be >= 0.
  HoldbackDisplayer(VarId var, double timeout);

  /// Processes one arriving alert at time `now`. Exact duplicates of
  /// buffered or displayed alerts are absorbed. Returns any alerts whose
  /// display this arrival triggered (an arrival never directly releases
  /// in this scheme, so the list is empty unless timeout == 0).
  std::vector<Alert> on_alert(const Alert& a, double now);

  /// Releases every buffered alert whose deadline has passed, in
  /// sequence-number order, and returns them. Call at (or after) the
  /// deadlines reported by next_deadline().
  std::vector<Alert> on_time(double now);

  /// Releases everything still buffered (end of stream).
  std::vector<Alert> flush();

  /// Earliest pending deadline, if any alert is buffered.
  [[nodiscard]] std::optional<double> next_deadline() const;

  /// Everything displayed so far, in display order.
  [[nodiscard]] const std::vector<Alert>& displayed() const noexcept {
    return displayed_;
  }

  /// Alerts that were displayed with a sequence number lower than an
  /// already-displayed one — orderedness violations forced by timeouts.
  [[nodiscard]] std::size_t late_displays() const noexcept { return late_; }

  /// Exact duplicates absorbed.
  [[nodiscard]] std::size_t duplicates() const noexcept { return duplicates_; }

  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  struct Held {
    Alert alert;
    double deadline;
  };

  void display(const Alert& a);

  VarId var_;
  double timeout_;
  std::deque<Held> buffer_;  // arrival order; deadlines non-decreasing
  std::vector<Alert> displayed_;
  std::set<AlertKey> seen_;
  SeqNo last_displayed_ = kNoSeqNo;
  std::size_t late_ = 0;
  std::size_t duplicates_ = 0;
};

}  // namespace rcm
