#include "core/displayer.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace rcm {

AlertDisplayer::AlertDisplayer(FilterPtr filter,
                               std::function<void(const Alert&)> sink)
    : filter_(std::move(filter)), sink_(std::move(sink)) {
  if (!filter_) throw std::invalid_argument("AlertDisplayer: null filter");
#if RCM_METRICS_ENABLED
  // Per-AD-kind decision counters, resolved once per displayer so the
  // per-alert cost is a single relaxed increment.
  const std::string prefix = "filter." + std::string{filter_->name()};
  passed_metric_ = &obs::registry().counter(prefix + ".pass");
  suppressed_metric_ = &obs::registry().counter(prefix + ".suppress");
#endif
}

bool AlertDisplayer::on_alert(const Alert& a) {
  arrived_.push_back(a);
  if (!filter_->offer(a)) {
    if (suppressed_metric_) suppressed_metric_->inc();
    return false;
  }
  if (passed_metric_) passed_metric_->inc();
  displayed_.push_back(a);
  if (sink_) sink_(a);
  return true;
}

void AlertDisplayer::reset() {
  arrived_.clear();
  displayed_.clear();
  filter_->reset();
}

std::vector<Alert> run_filter(AlertFilter& filter,
                              std::span<const Alert> arrivals) {
  filter.reset();
  std::vector<Alert> out;
  for (const Alert& a : arrivals)
    if (filter.offer(a)) out.push_back(a);
  return out;
}

}  // namespace rcm
