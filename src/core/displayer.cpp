#include "core/displayer.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcm {

AlertDisplayer::AlertDisplayer(FilterPtr filter,
                               std::function<void(const Alert&)> sink)
    : filter_(std::move(filter)), sink_(std::move(sink)) {
  if (!filter_) throw std::invalid_argument("AlertDisplayer: null filter");
#if RCM_METRICS_ENABLED
  // Per-AD-kind decision counters, resolved once per displayer so the
  // per-alert cost is a single relaxed increment.
  const std::string prefix = "filter." + std::string{filter_->name()};
  passed_metric_ = &obs::registry().counter(prefix + ".pass");
  suppressed_metric_ = &obs::registry().counter(prefix + ".suppress");
#endif
}

bool AlertDisplayer::on_alert(const Alert& a) {
  // Filter verdicts are a hop of the alert's end-to-end trace: adopt the
  // alert's trace id for the span recorded below.
  obs::trace::ContextScope tscope{
      obs::trace::TraceContext{a.trace_id, 0}};
  RCM_TRACE_SPAN(span, "ad.filter");

  arrived_.push_back(a);
  const FilterDecision decision = filter_->decide(a);
  span.reason(decision.reason);

  AlertProvenance prov;
  prov.arrival_index = arrived_.size() - 1;
  prov.trace_id = a.trace_id;
  prov.cond = a.cond;
  for (const auto& [var, window] : a.histories)
    for (const Update& u : window) prov.triggers.emplace_back(var, u.seqno);
  prov.filter = std::string{filter_->name()};
  prov.displayed = decision.accept;
  prov.reason = decision.reason;
  provenance_.push_back(std::move(prov));

  if (!decision.accept) {
    if (suppressed_metric_) suppressed_metric_->inc();
    return false;
  }
  filter_->record(a);
  if (passed_metric_) passed_metric_->inc();
  displayed_.push_back(a);
  if (sink_) sink_(a);
  return true;
}

void AlertDisplayer::reset() {
  arrived_.clear();
  displayed_.clear();
  provenance_.clear();
  filter_->reset();
}

std::vector<Alert> run_filter(AlertFilter& filter,
                              std::span<const Alert> arrivals) {
  filter.reset();
  std::vector<Alert> out;
  for (const Alert& a : arrivals)
    if (filter.offer(a)) out.push_back(a);
  return out;
}

}  // namespace rcm
