#include "core/displayer.hpp"

#include <stdexcept>

namespace rcm {

AlertDisplayer::AlertDisplayer(FilterPtr filter,
                               std::function<void(const Alert&)> sink)
    : filter_(std::move(filter)), sink_(std::move(sink)) {
  if (!filter_) throw std::invalid_argument("AlertDisplayer: null filter");
}

bool AlertDisplayer::on_alert(const Alert& a) {
  arrived_.push_back(a);
  if (!filter_->offer(a)) return false;
  displayed_.push_back(a);
  if (sink_) sink_(a);
  return true;
}

void AlertDisplayer::reset() {
  arrived_.clear();
  displayed_.clear();
  filter_->reset();
}

std::vector<Alert> run_filter(AlertFilter& filter,
                              std::span<const Alert> arrivals) {
  filter.reset();
  std::vector<Alert> out;
  for (const Alert& a : arrivals)
    if (filter.offer(a)) out.push_back(a);
  return out;
}

}  // namespace rcm
