// Conditions (paper §2).
//
// A condition c is a boolean expression over the update histories H of its
// variable set V. Each condition knows:
//  - its variable set V,
//  - its degree with respect to each variable (how many updates of that
//    variable the CE must retain),
//  - its triggering class: *conservative* conditions evaluate to false
//    whenever the sequence numbers in any referenced history are not
//    consecutive (i.e. they detect a lost update); *aggressive* conditions
//    evaluate regardless of gaps.
//
// Per the paper we exclude conditions of infinite degree, conditions that
// need state beyond H (high watermarks), and conditions over wall-clock
// time: every condition here is a pure function of H.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/history.hpp"
#include "core/types.hpp"

namespace rcm {

/// Triggering class of a condition (paper §2).
enum class Triggering {
  kConservative,  ///< false whenever a referenced history has a seqno gap
  kAggressive,    ///< evaluates on whatever updates were received
};

/// Whether a condition looks at more than the most recent update of some
/// variable (paper §2: degree > 1 for any variable makes it historical).
enum class HistoryClass {
  kNonHistorical,  ///< degree 1 w.r.t. every variable in V
  kHistorical,     ///< degree >= 2 w.r.t. at least one variable
};

/// Abstract condition. Implementations must be deterministic pure
/// functions of the history set: the property theory (and the checkers in
/// rcm::check) relies on T being a function of the received update
/// sequence only.
class Condition {
 public:
  virtual ~Condition() = default;

  /// Condition name; becomes the `condname` of every alert it raises.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The variable set V, ascending by id, without duplicates.
  [[nodiscard]] virtual const std::vector<VarId>& variables() const noexcept = 0;

  /// Degree with respect to variable v (>= 1 for v in V).
  [[nodiscard]] virtual int degree(VarId v) const = 0;

  /// Evaluates the condition. Precondition: h contains a defined history
  /// of at least degree(v) for every v in V.
  [[nodiscard]] virtual bool evaluate(const HistorySet& h) const = 0;

  /// Triggering class; metadata used by the experiment harnesses to label
  /// scenarios. Implementations of conservative conditions must actually
  /// check History::consecutive() in evaluate().
  [[nodiscard]] virtual Triggering triggering() const noexcept = 0;

  /// Derived classification: historical iff any degree exceeds 1.
  [[nodiscard]] HistoryClass history_class() const;

  /// Creates the history set the CE needs for this condition: one History
  /// of the right degree per variable.
  [[nodiscard]] HistorySet make_history_set() const;

  Condition() = default;
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;
};

using ConditionPtr = std::shared_ptr<const Condition>;

}  // namespace rcm
