// The Alert Displayer (paper §2): merges the alert streams of the CE
// replicas, runs an AD filtering algorithm over the merged interleaving,
// and delivers the surviving alerts to the end user (a sink callback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/alert.hpp"
#include "core/filters.hpp"

namespace rcm::obs {
class Counter;
}  // namespace rcm::obs

namespace rcm {

/// Provenance of one AD arrival: which (var, seq) updates triggered the
/// alert, which filter judged it, and the verdict with its reason. One
/// record per arrival (displayed or suppressed), in arrival order — the
/// "why was/wasn't this alert shown" audit trail the swarm fuzzer checks
/// against the journal invariants.
struct AlertProvenance {
  std::size_t arrival_index = 0;     ///< position in arrived()
  std::uint64_t trace_id = 0;        ///< Alert::trace_id (0 if untraced)
  std::string cond;                  ///< condition name
  /// The triggering updates: every (var, seqno) in the alert's history
  /// windows, i.e. the flattened AlertKey signature.
  std::vector<std::pair<VarId, SeqNo>> triggers;
  std::string filter;                ///< judging filter ("AD-4", ...)
  bool displayed = false;
  const char* reason = "";           ///< FilterDecision reason (literal)
};

/// One Alert Displayer instance. Thread-compatible (externally
/// synchronized); the threaded runtime wraps it in an actor with a queue.
class AlertDisplayer {
 public:
  /// `sink` is invoked for every displayed alert; pass nullptr to only
  /// collect. The displayer owns the filter.
  explicit AlertDisplayer(FilterPtr filter,
                          std::function<void(const Alert&)> sink = nullptr);

  /// Processes one arriving alert; returns true iff it was displayed.
  bool on_alert(const Alert& a);

  /// The final output sequence A displayed so far.
  [[nodiscard]] const std::vector<Alert>& displayed() const noexcept {
    return displayed_;
  }

  /// Every alert that arrived, pre-filtering, in arrival order — the
  /// merged interleaving of the CE streams. Property checkers use this to
  /// replay the same interleaving through other filters.
  [[nodiscard]] const std::vector<Alert>& arrived() const noexcept {
    return arrived_;
  }

  /// Number of alerts the filter suppressed.
  [[nodiscard]] std::size_t suppressed() const noexcept {
    return arrived_.size() - displayed_.size();
  }

  /// One provenance record per arrival, in arrival order (parallel to
  /// arrived()).
  [[nodiscard]] const std::vector<AlertProvenance>& provenance()
      const noexcept {
    return provenance_;
  }

  [[nodiscard]] const AlertFilter& filter() const noexcept { return *filter_; }

  /// Clears collected sequences and resets the filter.
  void reset();

 private:
  FilterPtr filter_;
  std::function<void(const Alert&)> sink_;
  std::vector<Alert> arrived_;
  std::vector<Alert> displayed_;
  std::vector<AlertProvenance> provenance_;
  // Per-AD-kind pass/suppress counters (obs layer); null when metrics
  // are compiled out.
  obs::Counter* passed_metric_ = nullptr;
  obs::Counter* suppressed_metric_ = nullptr;
};

/// Replays an arrival interleaving through a fresh filter and returns the
/// displayed sequence. This is M_{AD-i}(A1, A2, ...) of Appendix B for the
/// specific interleaving `arrivals`.
[[nodiscard]] std::vector<Alert> run_filter(AlertFilter& filter,
                                            std::span<const Alert> arrivals);

}  // namespace rcm
