// The Alert Displayer (paper §2): merges the alert streams of the CE
// replicas, runs an AD filtering algorithm over the merged interleaving,
// and delivers the surviving alerts to the end user (a sink callback).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/alert.hpp"
#include "core/filters.hpp"

namespace rcm::obs {
class Counter;
}  // namespace rcm::obs

namespace rcm {

/// One Alert Displayer instance. Thread-compatible (externally
/// synchronized); the threaded runtime wraps it in an actor with a queue.
class AlertDisplayer {
 public:
  /// `sink` is invoked for every displayed alert; pass nullptr to only
  /// collect. The displayer owns the filter.
  explicit AlertDisplayer(FilterPtr filter,
                          std::function<void(const Alert&)> sink = nullptr);

  /// Processes one arriving alert; returns true iff it was displayed.
  bool on_alert(const Alert& a);

  /// The final output sequence A displayed so far.
  [[nodiscard]] const std::vector<Alert>& displayed() const noexcept {
    return displayed_;
  }

  /// Every alert that arrived, pre-filtering, in arrival order — the
  /// merged interleaving of the CE streams. Property checkers use this to
  /// replay the same interleaving through other filters.
  [[nodiscard]] const std::vector<Alert>& arrived() const noexcept {
    return arrived_;
  }

  /// Number of alerts the filter suppressed.
  [[nodiscard]] std::size_t suppressed() const noexcept {
    return arrived_.size() - displayed_.size();
  }

  [[nodiscard]] const AlertFilter& filter() const noexcept { return *filter_; }

  /// Clears collected sequences and resets the filter.
  void reset();

 private:
  FilterPtr filter_;
  std::function<void(const Alert&)> sink_;
  std::vector<Alert> arrived_;
  std::vector<Alert> displayed_;
  // Per-AD-kind pass/suppress counters (obs layer); null when metrics
  // are compiled out.
  obs::Counter* passed_metric_ = nullptr;
  obs::Counter* suppressed_metric_ = nullptr;
};

/// Replays an arrival interleaving through a fresh filter and returns the
/// displayed sequence. This is M_{AD-i}(A1, A2, ...) of Appendix B for the
/// specific interleaving `arrivals`.
[[nodiscard]] std::vector<Alert> run_filter(AlertFilter& filter,
                                            std::span<const Alert> arrivals);

}  // namespace rcm
