#include "core/alert.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/history.hpp"

namespace rcm {
namespace {

void hash_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  // FNV-1a style mix over 64-bit lanes.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::size_t AlertKeyHash::operator()(const AlertKey& k) const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : k.cond) hash_mix(h, static_cast<std::uint64_t>(c));
  for (const auto& [var, seqs] : k.signature) {
    hash_mix(h, var);
    for (SeqNo s : seqs) hash_mix(h, static_cast<std::uint64_t>(s));
  }
  return static_cast<std::size_t>(h);
}

SeqNo Alert::seqno(VarId v) const {
  auto it = histories.find(v);
  if (it == histories.end() || it->second.empty())
    throw std::out_of_range("Alert::seqno: variable not in alert histories");
  return it->second.back().seqno;  // windows are ascending
}

std::vector<SeqNo> Alert::history_seqnos(VarId v) const {
  std::vector<SeqNo> out;
  auto it = histories.find(v);
  if (it == histories.end()) return out;
  out.reserve(it->second.size());
  for (const Update& u : it->second) out.push_back(u.seqno);
  return out;
}

AlertKey Alert::key() const {
  AlertKey k;
  k.cond = cond;
  k.signature.reserve(histories.size());
  for (const auto& [var, window] : histories) {
    std::vector<SeqNo> seqs;
    seqs.reserve(window.size());
    for (const Update& u : window) seqs.push_back(u.seqno);
    k.signature.emplace_back(var, std::move(seqs));
  }
  return k;
}

std::uint64_t Alert::checksum() const noexcept {
  return static_cast<std::uint64_t>(AlertKeyHash{}(key()));
}

std::ostream& operator<<(std::ostream& os, const Alert& a) {
  os << a.cond << "{";
  bool first_var = true;
  for (const auto& [var, window] : a.histories) {
    if (!first_var) os << ", ";
    first_var = false;
    os << "v" << var << ":[";
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (i) os << ",";
      os << window[i].seqno;
    }
    os << "]";
  }
  return os << "}";
}

Alert make_alert(std::string cond, const HistorySet& h) {
  Alert a;
  a.cond = std::move(cond);
  for (VarId v : h.variables()) {
    const History& hist = h.of(v);
    std::vector<Update> window;
    window.reserve(hist.size());
    // History::at uses 0 = newest; build ascending (oldest first).
    for (int i = -(static_cast<int>(hist.size()) - 1); i <= 0; ++i)
      window.push_back(hist.at(i));
    a.histories.emplace(v, std::move(window));
  }
  return a;
}

std::string to_string(const Alert& a, const VariableRegistry& vars) {
  std::ostringstream os;
  os << a.cond << "{";
  bool first_var = true;
  for (const auto& [var, window] : a.histories) {
    if (!first_var) os << ", ";
    first_var = false;
    os << vars.name(var) << ":[";
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (i) os << ",";
      os << window[i].seqno;
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace rcm
