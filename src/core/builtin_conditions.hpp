// The concrete conditions used throughout the paper, plus generic
// building blocks (predicate-backed conditions and disjunction, the
// C = A OR B construction of Appendix D).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/condition.hpp"

namespace rcm {

/// c1 of the paper: "reactor temperature is over 3000 degrees".
/// Non-historical (degree 1), trivially conservative and aggressive at
/// once; we report it conservative since no gap can be observed in a
/// window of one update.
class ThresholdCondition final : public Condition {
 public:
  /// Triggers when the latest value of `var` compares greater than
  /// `threshold` (or less than, if `above` is false).
  ThresholdCondition(std::string name, VarId var, double threshold,
                     bool above = true);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  double threshold_;
  bool above_;
};

/// c2 / c3 of the paper: "temperature has risen by more than `delta`".
/// With Triggering::kAggressive this is c2 ("since last reading
/// *received*"); with Triggering::kConservative it is c3 ("since last
/// reading *taken at the DM*"), which additionally requires
/// H[0].seqno == H[-1].seqno + 1. Pass a negative `delta` combined with
/// `drop=true` to express price-drop conditions (value change < -delta).
class RiseCondition final : public Condition {
 public:
  RiseCondition(std::string name, VarId var, double delta, Triggering trig);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  double delta_;
  Triggering trig_;
};

/// The intro's "sharp price drop": value dropped by more than `fraction`
/// (e.g. 0.20) between two consecutive readings the CE received.
/// Aggressive by construction — exactly the condition whose replicated
/// inconsistency motivates the paper (CE2 missing the 50 and alerting on
/// 100 -> 52).
class RelativeDropCondition final : public Condition {
 public:
  RelativeDropCondition(std::string name, VarId var, double fraction,
                        Triggering trig = Triggering::kAggressive);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  double fraction_;
  Triggering trig_;
};

/// cm of Theorem 10's proof: |x - y| > `delta`, the two-reactor
/// temperature-difference condition. Degree 1 in both variables.
class AbsDiffCondition final : public Condition {
 public:
  AbsDiffCondition(std::string name, VarId x, VarId y, double delta);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  double delta_;
};

/// Appendix D's Example 4 conditions, and generally "x > y":
/// triggers when the latest x value exceeds the latest y value.
class GreaterThanCondition final : public Condition {
 public:
  GreaterThanCondition(std::string name, VarId x, VarId y);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  VarId x_, y_;
};

/// Fully generic condition backed by a user predicate over the history
/// set. Degree/variables/triggering are declared by the caller; the
/// predicate must respect them (the CE sizes buffers from the
/// declaration). The tests use this to build arbitrary synthetic
/// conditions for property sweeps.
class PredicateCondition final : public Condition {
 public:
  using Predicate = std::function<bool(const HistorySet&)>;

  PredicateCondition(std::string name, std::vector<std::pair<VarId, int>> degrees,
                     Triggering trig, Predicate pred);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

 private:
  std::string name_;
  std::vector<VarId> vars_;
  std::vector<std::pair<VarId, int>> degrees_;
  Triggering trig_;
  Predicate pred_;
};

/// C = A OR B (Appendix D, Figure D-8): triggers whenever either
/// sub-condition triggers. Its variable set is the union; its degree per
/// variable is the max over the parts; it is conservative only if both
/// parts are.
class DisjunctionCondition final : public Condition {
 public:
  DisjunctionCondition(std::string name, std::vector<ConditionPtr> parts);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(VarId v) const override;
  [[nodiscard]] bool evaluate(const HistorySet& h) const override;
  [[nodiscard]] Triggering triggering() const noexcept override;

  [[nodiscard]] const std::vector<ConditionPtr>& parts() const noexcept {
    return parts_;
  }

 private:
  std::string name_;
  std::vector<VarId> vars_;
  std::vector<ConditionPtr> parts_;
};

}  // namespace rcm
