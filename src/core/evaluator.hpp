// The Condition Evaluator (paper §2) and the mapping T it computes.
//
// A CE consumes one ordered stream of updates and produces an ordered
// stream of alerts: whenever a newly received update makes the condition
// true (over the current histories), an alert carrying those histories is
// emitted. T(U) — the alert sequence a CE produces from update sequence U —
// is the reference object in every property definition, so the same
// evaluation code backs both the "live" CEs in the simulator/runtime and
// the reference computations in rcm::check.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/alert.hpp"
#include "core/condition.hpp"
#include "core/history.hpp"

namespace rcm {

/// Incremental condition evaluator: one instance per CE replica.
class ConditionEvaluator {
 public:
  /// Creates an evaluator for `condition`. `replica_id` labels this CE in
  /// logs ("CE1", "CE2"); it does not affect behaviour.
  explicit ConditionEvaluator(ConditionPtr condition,
                              std::string replica_id = "CE");

  /// Processes one received update: incorporates it into the history of
  /// its variable and re-evaluates the condition. Returns the alert if the
  /// condition is satisfied, nullopt otherwise.
  ///
  /// Stale updates (sequence number <= the last one received for the same
  /// variable) are discarded, implementing the paper's assumption that a
  /// receiver drops messages that arrive out of order. Updates of
  /// variables outside V are ignored.
  std::optional<Alert> on_update(const Update& u);

  /// True iff the update would be accepted (right variable, fresh seqno).
  [[nodiscard]] bool would_accept(const Update& u) const;

  /// Updates accepted so far, in arrival order: this CE's U_i.
  [[nodiscard]] const std::vector<Update>& received() const noexcept {
    return received_;
  }

  /// Alerts emitted so far: this CE's A_i = T(U_i).
  [[nodiscard]] const std::vector<Alert>& emitted() const noexcept {
    return emitted_;
  }

  [[nodiscard]] const Condition& condition() const noexcept { return *cond_; }
  [[nodiscard]] const std::string& replica_id() const noexcept { return id_; }

  /// Simulates a crash that loses all volatile state (histories and
  /// last-seen counters). The received/emitted logs are kept: they model
  /// what the outside world observed, not the CE's memory.
  void crash_reset();

  /// Volatile evaluation state, exposed for snapshotting (see
  /// wire/snapshot.hpp): the per-variable history windows and the
  /// highest sequence number accepted per variable.
  [[nodiscard]] const HistorySet& histories() const noexcept {
    return histories_;
  }
  [[nodiscard]] const std::map<VarId, SeqNo>& last_seen() const noexcept {
    return last_seen_;
  }

  /// Restores volatile state from a snapshot (warm recovery after a
  /// crash): the inverse of reading histories()/last_seen(). The
  /// received/emitted logs are untouched. Precondition: `h` was built
  /// for this evaluator's condition.
  void restore_state(HistorySet h, std::map<VarId, SeqNo> last);

  /// Applies `u` to the volatile state exactly like on_update, but
  /// without appending to the received/emitted logs: the WAL-replay
  /// half of crash recovery, where the update was already observed (and
  /// its alert, if any, already delivered) by a previous incarnation.
  /// Returns whether the update was accepted.
  bool replay_update(const Update& u);

 private:
  ConditionPtr cond_;
  std::string id_;
  HistorySet histories_;
  std::vector<Update> received_;
  std::vector<Alert> emitted_;
  std::map<VarId, SeqNo> last_seen_;
};

/// The paper's T: computes the full alert sequence a single CE produces
/// from update sequence `u`. Deterministic and stateless across calls.
[[nodiscard]] std::vector<Alert> evaluate_trace(const ConditionPtr& condition,
                                                std::span<const Update> u);

}  // namespace rcm
