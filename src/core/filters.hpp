// The Alert Displayer filtering algorithms AD-1 .. AD-6 (paper §4, §5,
// Appendix A), plus the two trivial reference filters used in the
// domination discussion of §4.1.
//
// Each filter is a stateful online decision procedure: alerts arrive one
// at a time (the interleaving of the CE streams is whatever the network
// produced) and the filter accepts or discards each immediately.
//
// The implementations deliberately separate the *decision* (`accepts`,
// const) from the *state transition* (`record`). Algorithm AD-4 is
// literally "discard anything AD-2 or AD-3 would discard", which is only
// correct if the two parts observe exactly the alerts that pass the
// combined test — the accepts/record split makes that composition exact
// (and likewise for AD-6 = AD-5 + multi-variable AD-3).
//
// Fidelity note (documented in EXPERIMENTS.md as well): the paper's AD-3
// pseudo-code in Figure A-3, taken literally, lets an *exact duplicate*
// alert through, because a duplicate re-asserts facts already in
// Received/Missed and creates no conflict. Theorem 8 (AD-1 > AD-3: "AD-3
// filters out at least all the alerts filtered by AD-1") requires AD-3 to
// suppress duplicates, so our AD-3 additionally applies AD-1's exact
// duplicate test. Consistency itself is unaffected either way (Phi A is a
// set), but domination is only as stated in the paper with this reading.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/alert.hpp"
#include "core/types.hpp"

namespace rcm {

/// A filter verdict with the reason behind it, feeding the alert
/// provenance records (core/displayer.hpp). `reason` is always a string
/// literal so verdicts are allocation-free and safe to keep forever.
struct FilterDecision {
  bool accept = true;
  const char* reason = "accepted";
};

/// Interface of an AD filtering algorithm.
class AlertFilter {
 public:
  virtual ~AlertFilter() = default;

  /// Would this alert be displayed, given the filter's current state?
  /// Pure: does not change state.
  [[nodiscard]] virtual bool accepts(const Alert& a) const = 0;

  /// accepts() with a reason attached. Invariant (pinned by
  /// tests/filters_test.cpp): decide(a).accept == accepts(a) in every
  /// state. Filters override this to explain *which* test failed; the
  /// default wraps accepts() with generic reasons.
  [[nodiscard]] virtual FilterDecision decide(const Alert& a) const {
    return accepts(a) ? FilterDecision{true, "accepted"}
                      : FilterDecision{false, "suppressed"};
  }

  /// Transitions the state as if `a` had been displayed. Precondition:
  /// accepts(a) is true (composite filters depend on this).
  virtual void record(const Alert& a) = 0;

  /// Algorithm name for reports ("AD-1", "AD-4", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Forgets all state, as if no alert had been processed.
  virtual void reset() = 0;

  /// Convenience: accepts + record in one step. Returns whether the alert
  /// passed the filter (i.e. should be displayed).
  bool offer(const Alert& a) {
    if (!accepts(a)) return false;
    record(a);
    return true;
  }

  AlertFilter() = default;
  AlertFilter(const AlertFilter&) = delete;
  AlertFilter& operator=(const AlertFilter&) = delete;
};

using FilterPtr = std::unique_ptr<AlertFilter>;

/// Reference filter: passes everything (the "no AD processing" baseline;
/// the corresponding non-replicated system N uses this implicitly).
class PassAllFilter final : public AlertFilter {
 public:
  [[nodiscard]] bool accepts(const Alert&) const override { return true; }
  void record(const Alert&) override {}
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override {}
};

/// Reference filter from §4.1: passes nothing. Trivially ordered and
/// consistent — and useless; it anchors the bottom of the domination
/// order.
class DropAllFilter final : public AlertFilter {
 public:
  [[nodiscard]] bool accepts(const Alert&) const override { return false; }
  [[nodiscard]] FilterDecision decide(const Alert&) const override {
    return {false, "drop-all: this filter displays nothing"};
  }
  void record(const Alert&) override {}
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override {}
};

/// Algorithm AD-1 (Figure A-1): exact duplicate removal. Two alerts are
/// identical iff their history sets are equal (same condition, same
/// per-variable windows).
class Ad1DuplicateFilter final : public AlertFilter {
 public:
  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  std::unordered_set<AlertKey, AlertKeyHash> seen_;
};

/// Algorithm AD-2 (Figure A-2): single-variable orderedness. Discards any
/// alert whose sequence number is <= the last displayed one. Maximally
/// ordered (Theorem 5).
class Ad2OrderedFilter final : public AlertFilter {
 public:
  /// `var` is the condition's single variable.
  explicit Ad2OrderedFilter(VarId var) : var_(var) {}

  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  VarId var_;
  SeqNo last_ = kNoSeqNo;
};

/// Received/Missed bookkeeping shared by AD-3 (single variable) and the
/// multi-variable extension used inside AD-6. Tracks, per variable, which
/// update sequence numbers displayed alerts imply were received and which
/// were missed; an alert whose history contradicts either set conflicts.
class ReceivedMissedLedger {
 public:
  /// True iff displaying an alert with these per-variable history seqnos
  /// would contradict an already-displayed alert.
  [[nodiscard]] bool conflicts(const Alert& a) const;

  /// Folds a displayed alert's implications into the ledger:
  /// its history seqnos into Received, the gaps inside each window's
  /// spanning set into Missed.
  void update(const Alert& a);

  void clear();

 private:
  struct VarState {
    std::set<SeqNo> received;
    std::set<SeqNo> missed;
  };
  std::map<VarId, VarState> state_;
};

/// Algorithm AD-3 (Figure A-3): consistency via the Received/Missed
/// ledger, plus exact-duplicate suppression (see the fidelity note at the
/// top of this header). Maximally consistent (Theorem 7).
class Ad3ConsistentFilter final : public AlertFilter {
 public:
  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  ReceivedMissedLedger ledger_;
  std::unordered_set<AlertKey, AlertKeyHash> seen_;
};

/// Algorithm AD-4 (Figure A-4): discards anything AD-2 or AD-3 would
/// discard; guarantees orderedness and consistency, maximally so
/// (Theorem 9).
class Ad4OrderedConsistentFilter final : public AlertFilter {
 public:
  explicit Ad4OrderedConsistentFilter(VarId var) : ad2_(var) {}

  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  Ad2OrderedFilter ad2_;
  Ad3ConsistentFilter ad3_;
};

/// Algorithm AD-5 (Figure A-5): multi-variable orderedness. Tracks the
/// last displayed sequence number per variable; discards an alert that
/// inverts order in any variable, or that equals the last alert in every
/// variable (a duplicate). Works for any number of variables.
class Ad5MultiOrderedFilter final : public AlertFilter {
 public:
  explicit Ad5MultiOrderedFilter(std::vector<VarId> vars);

  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  std::vector<VarId> vars_;
  std::map<VarId, SeqNo> last_;
};

/// Algorithm AD-6 (Figure A-6): AD-5 combined with the multi-variable
/// Received/Missed ledger (the per-variable extension of AD-3); enforces
/// orderedness and consistency in multi-variable systems.
class Ad6MultiOrderedConsistentFilter final : public AlertFilter {
 public:
  explicit Ad6MultiOrderedConsistentFilter(std::vector<VarId> vars);

  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  Ad5MultiOrderedFilter ad5_;
  ReceivedMissedLedger ledger_;
  std::unordered_set<AlertKey, AlertKeyHash> seen_;
};

/// TEST-ONLY broken variant of Algorithm AD-2: the holdback test against
/// the last displayed sequence number is dropped, so the filter passes
/// out-of-order alerts; only an exact duplicate of the *immediately
/// preceding* display is suppressed. It claims AD-2's guarantees but
/// delivers none of them — the swarm harness (src/swarm) injects it to
/// prove its own detection and shrinking machinery works. Never use it
/// in a real deployment.
class BrokenAd2Filter final : public AlertFilter {
 public:
  [[nodiscard]] bool accepts(const Alert& a) const override;
  [[nodiscard]] FilterDecision decide(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

 private:
  std::optional<AlertKey> last_;
};

/// Names accepted by make_filter. kBrokenAd2 is test-only (see
/// BrokenAd2Filter); it exists so the swarm harness can validate that a
/// filter which silently violates its guarantee table is caught.
enum class FilterKind {
  kPassAll,
  kDropAll,
  kAd1,
  kAd2,
  kAd3,
  kAd4,
  kAd5,
  kAd6,
  kBrokenAd2,
};

/// Factory. `vars` is the condition's variable set; AD-2/AD-4 require
/// exactly one variable, AD-5/AD-6 accept any number.
[[nodiscard]] FilterPtr make_filter(FilterKind kind,
                                    const std::vector<VarId>& vars);

/// Parses "AD-1".."AD-6", "pass", "drop" (case-insensitive); throws
/// std::invalid_argument on anything else.
[[nodiscard]] FilterKind parse_filter_kind(std::string_view name);

/// Printable name of a filter kind.
[[nodiscard]] std::string_view filter_kind_name(FilterKind kind) noexcept;

}  // namespace rcm
