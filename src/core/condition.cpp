#include "core/condition.hpp"

namespace rcm {

HistoryClass Condition::history_class() const {
  for (VarId v : variables())
    if (degree(v) > 1) return HistoryClass::kHistorical;
  return HistoryClass::kNonHistorical;
}

HistorySet Condition::make_history_set() const {
  HistorySet h;
  for (VarId v : variables()) h.add_variable(v, degree(v));
  return h;
}

}  // namespace rcm
