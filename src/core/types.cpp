#include "core/types.hpp"

#include <ostream>
#include <stdexcept>

namespace rcm {

std::ostream& operator<<(std::ostream& os, const Update& u) {
  return os << u.seqno << "@" << u.var << "(" << u.value << ")";
}

VarId VariableRegistry::intern(std::string_view name) {
  auto it = ids_.find(std::string{name});
  if (it != ids_.end()) return it->second;
  const VarId id = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

bool VariableRegistry::lookup(std::string_view name, VarId& out) const {
  auto it = ids_.find(std::string{name});
  if (it == ids_.end()) return false;
  out = it->second;
  return true;
}

const std::string& VariableRegistry::name(VarId id) const {
  if (id >= names_.size())
    throw std::out_of_range("VariableRegistry::name: unknown VarId");
  return names_[id];
}

}  // namespace rcm
