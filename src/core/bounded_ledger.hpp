// Bounded-memory variant of Algorithm AD-3 (engineering extension).
//
// AD-3's Received/Missed sets grow forever: every displayed alert adds
// its window seqnos and gaps, and nothing is ever evicted — fine for a
// PODC model, not for an Alert Displayer that runs for months. This
// variant evicts ledger entries older than a sliding horizon below the
// highest sequence number seen:
//
//   evict every recorded seqno  s  <  max_seen - horizon.
//
// Safety analysis (tested in bounded_ledger_test.cpp):
//  - While every arriving alert's window lies within the horizon of the
//    alerts it could conflict with, decisions equal unbounded AD-3's.
//  - An alert referencing seqnos below the evicted floor can no longer
//    be checked against forgotten facts, so consistency of the output
//    is only guaranteed *per horizon window*: two alerts more than
//    `horizon` apart may contradict each other. That is the explicit
//    trade-off: O(horizon) memory for a windowed consistency guarantee.
//    (In a monitoring deployment, an alert arriving thousands of
//    updates late is almost always junk anyway; pairing the filter with
//    AD-2's orderedness bound makes the window argument airtight for
//    in-order displays.)
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string_view>
#include <unordered_set>

#include "core/alert.hpp"
#include "core/filters.hpp"

namespace rcm {

/// AD-3 with a sliding eviction horizon per variable.
class Ad3BoundedFilter final : public AlertFilter {
 public:
  /// `horizon`: how many sequence numbers of ledger history to retain
  /// below the highest seqno seen per variable. Must be >= 1.
  explicit Ad3BoundedFilter(SeqNo horizon);

  [[nodiscard]] bool accepts(const Alert& a) const override;
  void record(const Alert& a) override;
  [[nodiscard]] std::string_view name() const noexcept override;
  void reset() override;

  /// Current ledger size in entries (both sets, all variables) — what
  /// the bound actually bounds.
  [[nodiscard]] std::size_t ledger_entries() const noexcept;

  [[nodiscard]] SeqNo horizon() const noexcept { return horizon_; }

 private:
  struct VarState {
    std::set<SeqNo> received;
    std::set<SeqNo> missed;
    SeqNo max_seen = kNoSeqNo;
  };
  void evict(VarState& vs) const;

  SeqNo horizon_;
  std::map<VarId, VarState> state_;
  /// Duplicate suppression, also horizon-bounded: keys are evicted once
  /// their newest seqno falls below every variable's floor (a duplicate
  /// arriving that late would be rejected by the ledger anyway only if
  /// facts survive — same windowed guarantee as the ledger itself).
  std::unordered_set<AlertKey, AlertKeyHash> seen_;
  std::multimap<SeqNo, AlertKey> seen_by_seqno_;
};

}  // namespace rcm
