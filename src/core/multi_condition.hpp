// Multi-condition Alert Displayers (Appendix D).
//
// When several conditions are monitored, the AD receives one merged
// stream of alerts tagged with their condition names. Appendix D shows
// that the single-condition analysis carries over to the
// separate-CEs-per-condition configuration (Figure D-7(c)) if the AD
// "separates the A and B alert streams and runs one instance of the
// filtering algorithm against each stream" — which is exactly what
// ConditionRouter does. The co-located configuration (Figure D-7(d)) is
// instead reduced to a single combined condition C = A OR B
// (DisjunctionCondition) monitored by ordinary replicated CEs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/displayer.hpp"
#include "core/filters.hpp"

namespace rcm {

/// Demultiplexes a merged multi-condition alert stream into one
/// AlertFilter instance per condition.
class ConditionRouter {
 public:
  /// Policy for alerts whose condition name was never registered.
  enum class UnknownPolicy { kDrop, kPass };

  explicit ConditionRouter(UnknownPolicy unknown = UnknownPolicy::kDrop)
      : unknown_(unknown) {}

  /// Registers a condition stream with its own filter instance.
  /// Re-registering a name replaces the filter (and resets that stream).
  void add_condition(const std::string& cond, FilterPtr filter);

  /// Routes one alert; returns whether it was displayed.
  bool on_alert(const Alert& a);

  /// All displayed alerts across conditions, in display order — what the
  /// user actually sees on the device.
  [[nodiscard]] const std::vector<Alert>& displayed() const noexcept {
    return displayed_;
  }

  /// Displayed alerts of one condition, in display order.
  [[nodiscard]] std::vector<Alert> displayed_for(const std::string& cond) const;

  /// Total arrivals (pre-filter).
  [[nodiscard]] std::size_t arrived() const noexcept { return arrived_; }

  [[nodiscard]] bool has_condition(const std::string& cond) const {
    return filters_.count(cond) != 0;
  }

  void reset();

 private:
  UnknownPolicy unknown_;
  std::map<std::string, FilterPtr> filters_;
  std::vector<Alert> displayed_;
  std::size_t arrived_ = 0;
};

}  // namespace rcm
