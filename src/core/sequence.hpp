// Sequence notation from paper §2.2, as code.
//
//  - ordered:           elements appear in non-decreasing order
//  - Phi(S):            the set of S's elements
//  - S1 subsequence S2  (S1 ⊑ S2): S1 obtained by deleting elements of S2
//  - ordered union      (S1 ⊔ S2): ordered sequence with Phi = union,
//                       duplicates removed
//  - Pi_x(U):           sequence of seqnos of x-updates in U
//
// Updates are ordered/merged by sequence number; for single-variable
// discussions an update stands for its seqno exactly as in the paper.
#pragma once

#include <span>
#include <vector>

#include "core/alert.hpp"
#include "core/types.hpp"

namespace rcm {

/// True iff the numbers appear in non-decreasing order.
[[nodiscard]] bool is_ordered(std::span<const SeqNo> s) noexcept;

/// True iff `a` can be obtained from `b` by deleting zero or more elements.
[[nodiscard]] bool is_subsequence(std::span<const SeqNo> a,
                                  std::span<const SeqNo> b) noexcept;

/// Ordered union S1 ⊔ S2 of two ordered seqno sequences (duplicates
/// removed). Precondition: both inputs ordered.
[[nodiscard]] std::vector<SeqNo> ordered_union(std::span<const SeqNo> a,
                                               std::span<const SeqNo> b);

/// Ordered union of two single-variable update sequences, merging by
/// seqno and dropping duplicates. Both inputs must be ordered by seqno
/// and contain updates of the same variable. When the same seqno appears
/// in both inputs the copy from `a` wins (values are full snapshots from
/// the same DM, so the copies are identical in a well-formed system).
[[nodiscard]] std::vector<Update> ordered_union(std::span<const Update> a,
                                                std::span<const Update> b);

/// Pi_x(U): seqnos of x-updates in U, in stream order.
[[nodiscard]] std::vector<SeqNo> project(std::span<const Update> u, VarId x);

/// Pi_x(A): a.seqno.x for each alert in A that includes variable x, in
/// stream order (paper §2.2). Alerts not involving x are skipped.
[[nodiscard]] std::vector<SeqNo> project(std::span<const Alert> a, VarId x);

/// True iff update sequence U is ordered with respect to variable x.
[[nodiscard]] bool is_ordered(std::span<const Update> u, VarId x);

/// True iff alert sequence A is ordered with respect to variable x.
[[nodiscard]] bool is_ordered(std::span<const Alert> a, VarId x);

/// Splits a mixed-variable stream into per-variable streams, preserving
/// relative order; returned pairs are ascending by VarId.
[[nodiscard]] std::vector<std::pair<VarId, std::vector<Update>>> split_by_var(
    std::span<const Update> u);

}  // namespace rcm
