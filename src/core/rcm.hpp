// Umbrella header for the rcm core library.
//
// The core implements the paper's model end to end:
//   - types.hpp / history.hpp / alert.hpp : updates, histories, alerts
//   - condition.hpp / builtin_conditions.hpp : the condition model and the
//     paper's concrete conditions (c1, c2, c3, cm, A-or-B)
//   - expr/expression_condition.hpp : conditions compiled from text
//   - evaluator.hpp : the Condition Evaluator and the mapping T
//   - filters.hpp / displayer.hpp : the Alert Displayer and algorithms
//     AD-1 .. AD-6
//   - sequence.hpp : the sequence calculus of §2.2
#pragma once

#include "core/alert.hpp"
#include "core/bounded_ledger.hpp"
#include "core/builtin_conditions.hpp"
#include "core/condition.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "core/expr/expression_condition.hpp"
#include "core/filters.hpp"
#include "core/history.hpp"
#include "core/holdback.hpp"
#include "core/multi_condition.hpp"
#include "core/sequence.hpp"
#include "core/types.hpp"
