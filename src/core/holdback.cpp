#include "core/holdback.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcm {

HoldbackDisplayer::HoldbackDisplayer(VarId var, double timeout)
    : var_(var), timeout_(timeout) {
  if (timeout < 0.0)
    throw std::invalid_argument("HoldbackDisplayer: negative timeout");
}

std::vector<Alert> HoldbackDisplayer::on_alert(const Alert& a, double now) {
  if (!seen_.insert(a.key()).second) {
    ++duplicates_;
    return {};
  }
  buffer_.push_back(Held{a, now + timeout_});
  // Queue depth in held alerts; the wait-time histogram below measures
  // how long each one actually sat (both in the caller's time unit —
  // virtual seconds under the simulator).
  RCM_OBSERVE_WITH("holdback.queue_depth",
                   ({1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
                   buffer_.size());
  return on_time(now);
}

std::vector<Alert> HoldbackDisplayer::on_time(double now) {
  // Collect expired entries; deadlines are non-decreasing in arrival
  // order, so expired entries form a prefix of the buffer.
  std::vector<Alert> batch;
  while (!buffer_.empty() && buffer_.front().deadline <= now) {
    RCM_OBSERVE("holdback.wait_time",
                now - (buffer_.front().deadline - timeout_));
    batch.push_back(std::move(buffer_.front().alert));
    buffer_.pop_front();
  }
  if (batch.empty()) return {};
  // Releasing an expired alert with seqno s while a smaller-seqno alert
  // still waits in the buffer would force that alert to display late;
  // releasing it early instead is always safe for orderedness. Pull every
  // buffered entry whose seqno is below the expired batch's maximum.
  SeqNo threshold = kNoSeqNo;
  for (const Alert& a : batch) threshold = std::max(threshold, a.seqno(var_));
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->alert.seqno(var_) <= threshold) {
      RCM_OBSERVE("holdback.wait_time", now - (it->deadline - timeout_));
      batch.push_back(std::move(it->alert));
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  // Release in sequence-number order.
  std::sort(batch.begin(), batch.end(), [&](const Alert& x, const Alert& y) {
    return x.seqno(var_) < y.seqno(var_);
  });
  for (const Alert& a : batch) display(a);
  return batch;
}

std::vector<Alert> HoldbackDisplayer::flush() {
  std::vector<Alert> rest;
  for (Held& h : buffer_) rest.push_back(std::move(h.alert));
  buffer_.clear();
  std::sort(rest.begin(), rest.end(), [&](const Alert& x, const Alert& y) {
    return x.seqno(var_) < y.seqno(var_);
  });
  for (const Alert& a : rest) display(a);
  return rest;
}

std::optional<double> HoldbackDisplayer::next_deadline() const {
  if (buffer_.empty()) return std::nullopt;
  return buffer_.front().deadline;
}

void HoldbackDisplayer::display(const Alert& a) {
  const SeqNo s = a.seqno(var_);
  obs::trace::ContextScope tscope{obs::trace::TraceContext{a.trace_id, 0}};
  RCM_TRACE_SPAN(span, "holdback.release");
  span.var(var_).seq(s);
  if (s < last_displayed_) ++late_;
  last_displayed_ = std::max(last_displayed_, s);
  displayed_.push_back(a);
}

}  // namespace rcm
