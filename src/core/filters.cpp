#include "core/filters.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace rcm {

namespace {

// Shared verdict literals so composite filters (AD-4, AD-6) report the
// same reason as the sub-filter that fired. Keep these in sync with the
// decide() implementations below; provenance records store the pointers.
constexpr const char* kAccepted = "accepted";
constexpr const char* kDuplicate =
    "duplicate: identical history set already displayed";
constexpr const char* kOutOfOrder =
    "out-of-order: seqno not above last displayed";
constexpr const char* kInconsistent =
    "inconsistent: contradicts the received/missed ledger";
constexpr const char* kMultiInversion =
    "out-of-order: would invert display order in a variable";
constexpr const char* kMultiDuplicate =
    "duplicate: equals the last display in every variable";

}  // namespace

// ----------------------------------------------------------- trivial ----

std::string_view PassAllFilter::name() const noexcept { return "pass"; }
std::string_view DropAllFilter::name() const noexcept { return "drop"; }

// -------------------------------------------------------------- AD-1 ----

bool Ad1DuplicateFilter::accepts(const Alert& a) const {
  return seen_.count(a.key()) == 0;
}

FilterDecision Ad1DuplicateFilter::decide(const Alert& a) const {
  return accepts(a) ? FilterDecision{true, kAccepted}
                    : FilterDecision{false, kDuplicate};
}

void Ad1DuplicateFilter::record(const Alert& a) { seen_.insert(a.key()); }

std::string_view Ad1DuplicateFilter::name() const noexcept { return "AD-1"; }

void Ad1DuplicateFilter::reset() { seen_.clear(); }

// -------------------------------------------------------------- AD-2 ----

bool Ad2OrderedFilter::accepts(const Alert& a) const {
  return a.seqno(var_) > last_;
}

FilterDecision Ad2OrderedFilter::decide(const Alert& a) const {
  return accepts(a) ? FilterDecision{true, kAccepted}
                    : FilterDecision{false, kOutOfOrder};
}

void Ad2OrderedFilter::record(const Alert& a) { last_ = a.seqno(var_); }

std::string_view Ad2OrderedFilter::name() const noexcept { return "AD-2"; }

void Ad2OrderedFilter::reset() { last_ = kNoSeqNo; }

// ---------------------------------------------- Received/Missed ledger ----

namespace {

// SpanningSet(s) of Figure A-3: all integers between min(s) and max(s)
// inclusive. We never materialize it; gaps are enumerated directly.
template <typename Fn>
void for_each_gap(const std::vector<SeqNo>& window_seqnos, Fn&& fn) {
  for (std::size_t i = 1; i < window_seqnos.size(); ++i)
    for (SeqNo s = window_seqnos[i - 1] + 1; s < window_seqnos[i]; ++s) fn(s);
}

}  // namespace

bool ReceivedMissedLedger::conflicts(const Alert& a) const {
  for (const auto& [var, window] : a.histories) {
    auto it = state_.find(var);
    if (it == state_.end()) continue;
    const VarState& vs = it->second;
    bool conflict = false;
    // Every seqno the alert claims received must not be known-missed.
    for (const Update& u : window)
      if (vs.missed.count(u.seqno)) conflict = true;
    // Every gap the alert implies missed must not be known-received.
    std::vector<SeqNo> seqs;
    seqs.reserve(window.size());
    for (const Update& u : window) seqs.push_back(u.seqno);
    for_each_gap(seqs, [&](SeqNo s) {
      if (vs.received.count(s)) conflict = true;
    });
    if (conflict) return true;
  }
  return false;
}

void ReceivedMissedLedger::update(const Alert& a) {
  for (const auto& [var, window] : a.histories) {
    VarState& vs = state_[var];
    std::vector<SeqNo> seqs;
    seqs.reserve(window.size());
    for (const Update& u : window) {
      vs.received.insert(u.seqno);
      seqs.push_back(u.seqno);
    }
    for_each_gap(seqs, [&](SeqNo s) { vs.missed.insert(s); });
  }
}

void ReceivedMissedLedger::clear() { state_.clear(); }

// -------------------------------------------------------------- AD-3 ----

bool Ad3ConsistentFilter::accepts(const Alert& a) const {
  if (seen_.count(a.key())) return false;  // fidelity note in header
  return !ledger_.conflicts(a);
}

FilterDecision Ad3ConsistentFilter::decide(const Alert& a) const {
  if (seen_.count(a.key())) return {false, kDuplicate};
  if (ledger_.conflicts(a)) return {false, kInconsistent};
  return {true, kAccepted};
}

void Ad3ConsistentFilter::record(const Alert& a) {
  seen_.insert(a.key());
  ledger_.update(a);
}

std::string_view Ad3ConsistentFilter::name() const noexcept { return "AD-3"; }

void Ad3ConsistentFilter::reset() {
  ledger_.clear();
  seen_.clear();
}

// -------------------------------------------------------------- AD-4 ----

bool Ad4OrderedConsistentFilter::accepts(const Alert& a) const {
  return ad2_.accepts(a) && ad3_.accepts(a);
}

FilterDecision Ad4OrderedConsistentFilter::decide(const Alert& a) const {
  const FilterDecision d2 = ad2_.decide(a);
  if (!d2.accept) return d2;
  return ad3_.decide(a);
}

void Ad4OrderedConsistentFilter::record(const Alert& a) {
  ad2_.record(a);
  ad3_.record(a);
}

std::string_view Ad4OrderedConsistentFilter::name() const noexcept {
  return "AD-4";
}

void Ad4OrderedConsistentFilter::reset() {
  ad2_.reset();
  ad3_.reset();
}

// -------------------------------------------------------------- AD-5 ----

Ad5MultiOrderedFilter::Ad5MultiOrderedFilter(std::vector<VarId> vars)
    : vars_(std::move(vars)) {
  if (vars_.empty())
    throw std::invalid_argument("Ad5MultiOrderedFilter: empty variable set");
  for (VarId v : vars_) last_[v] = kNoSeqNo;
}

bool Ad5MultiOrderedFilter::accepts(const Alert& a) const {
  bool all_equal = true;
  for (VarId v : vars_) {
    const SeqNo s = a.seqno(v);
    const SeqNo last = last_.at(v);
    if (s < last) return false;  // would invert order in v
    if (s != last) all_equal = false;
  }
  return !all_equal;  // equal in every variable == duplicate
}

FilterDecision Ad5MultiOrderedFilter::decide(const Alert& a) const {
  bool all_equal = true;
  for (VarId v : vars_) {
    const SeqNo s = a.seqno(v);
    const SeqNo last = last_.at(v);
    if (s < last) return {false, kMultiInversion};
    if (s != last) all_equal = false;
  }
  if (all_equal) return {false, kMultiDuplicate};
  return {true, kAccepted};
}

void Ad5MultiOrderedFilter::record(const Alert& a) {
  for (VarId v : vars_) last_[v] = a.seqno(v);
}

std::string_view Ad5MultiOrderedFilter::name() const noexcept {
  return "AD-5";
}

void Ad5MultiOrderedFilter::reset() {
  for (auto& [v, s] : last_) s = kNoSeqNo;
}

// -------------------------------------------------------------- AD-6 ----

Ad6MultiOrderedConsistentFilter::Ad6MultiOrderedConsistentFilter(
    std::vector<VarId> vars)
    : ad5_(std::move(vars)) {}

bool Ad6MultiOrderedConsistentFilter::accepts(const Alert& a) const {
  if (seen_.count(a.key())) return false;
  return ad5_.accepts(a) && !ledger_.conflicts(a);
}

FilterDecision Ad6MultiOrderedConsistentFilter::decide(const Alert& a) const {
  if (seen_.count(a.key())) return {false, kDuplicate};
  const FilterDecision d5 = ad5_.decide(a);
  if (!d5.accept) return d5;
  if (ledger_.conflicts(a)) return {false, kInconsistent};
  return {true, kAccepted};
}

void Ad6MultiOrderedConsistentFilter::record(const Alert& a) {
  seen_.insert(a.key());
  ad5_.record(a);
  ledger_.update(a);
}

std::string_view Ad6MultiOrderedConsistentFilter::name() const noexcept {
  return "AD-6";
}

void Ad6MultiOrderedConsistentFilter::reset() {
  seen_.clear();
  ad5_.reset();
  ledger_.clear();
}

// ------------------------------------------------- broken AD-2 (test) ----

bool BrokenAd2Filter::accepts(const Alert& a) const {
  // The real AD-2 compares a.seqno(var) against the last *displayed*
  // sequence number and discards anything <=. This variant forgot the
  // holdback entirely; it only absorbs an immediate exact repeat.
  return !last_ || a.key() != *last_;
}

FilterDecision BrokenAd2Filter::decide(const Alert& a) const {
  return accepts(a)
             ? FilterDecision{true, kAccepted}
             : FilterDecision{false,
                              "duplicate: immediate repeat of last display"};
}

void BrokenAd2Filter::record(const Alert& a) { last_ = a.key(); }

std::string_view BrokenAd2Filter::name() const noexcept {
  return "AD-2(broken)";
}

void BrokenAd2Filter::reset() { last_.reset(); }

// ------------------------------------------------------------ factory ----

FilterPtr make_filter(FilterKind kind, const std::vector<VarId>& vars) {
  auto require_single_var = [&](const char* algo) {
    if (vars.size() != 1)
      throw std::invalid_argument(std::string(algo) +
                                  " requires a single-variable condition");
    return vars[0];
  };
  switch (kind) {
    case FilterKind::kPassAll:
      return std::make_unique<PassAllFilter>();
    case FilterKind::kDropAll:
      return std::make_unique<DropAllFilter>();
    case FilterKind::kAd1:
      return std::make_unique<Ad1DuplicateFilter>();
    case FilterKind::kAd2:
      return std::make_unique<Ad2OrderedFilter>(require_single_var("AD-2"));
    case FilterKind::kAd3:
      return std::make_unique<Ad3ConsistentFilter>();
    case FilterKind::kAd4:
      return std::make_unique<Ad4OrderedConsistentFilter>(
          require_single_var("AD-4"));
    case FilterKind::kAd5:
      return std::make_unique<Ad5MultiOrderedFilter>(vars);
    case FilterKind::kAd6:
      return std::make_unique<Ad6MultiOrderedConsistentFilter>(vars);
    case FilterKind::kBrokenAd2:
      (void)require_single_var("AD-2(broken)");
      return std::make_unique<BrokenAd2Filter>();
  }
  throw std::invalid_argument("make_filter: unknown FilterKind");
}

FilterKind parse_filter_kind(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "pass" || lower == "passall") return FilterKind::kPassAll;
  if (lower == "drop" || lower == "dropall") return FilterKind::kDropAll;
  if (lower == "ad-1" || lower == "ad1") return FilterKind::kAd1;
  if (lower == "ad-2" || lower == "ad2") return FilterKind::kAd2;
  if (lower == "ad-3" || lower == "ad3") return FilterKind::kAd3;
  if (lower == "ad-4" || lower == "ad4") return FilterKind::kAd4;
  if (lower == "ad-5" || lower == "ad5") return FilterKind::kAd5;
  if (lower == "ad-6" || lower == "ad6") return FilterKind::kAd6;
  if (lower == "ad-2-broken" || lower == "ad2-broken" || lower == "broken")
    return FilterKind::kBrokenAd2;
  throw std::invalid_argument("unknown filter: " + std::string(name));
}

std::string_view filter_kind_name(FilterKind kind) noexcept {
  switch (kind) {
    case FilterKind::kPassAll: return "pass";
    case FilterKind::kDropAll: return "drop";
    case FilterKind::kAd1: return "AD-1";
    case FilterKind::kAd2: return "AD-2";
    case FilterKind::kAd3: return "AD-3";
    case FilterKind::kAd4: return "AD-4";
    case FilterKind::kAd5: return "AD-5";
    case FilterKind::kAd6: return "AD-6";
    case FilterKind::kBrokenAd2: return "AD-2(broken)";
  }
  return "?";
}

}  // namespace rcm
