// Fundamental vocabulary types of the monitoring model (paper §2).
//
// A Data Monitor emits a stream of *data updates* u(varname, seqno, value):
//  - `varname` identifies the real-world variable (reactor temperature,
//    stock price, ...); we intern names to dense 32-bit VarIds,
//  - `seqno` is assigned by the DM and is consecutive within one variable,
//  - `value` is a full snapshot of the variable (never a delta), so an
//    update remains useful even when its predecessor was lost.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rcm {

/// Dense identifier for a monitored real-world variable.
using VarId = std::uint32_t;

/// Per-variable update sequence number. The paper's DMs count from 1 and
/// the AD algorithms use -1 as "nothing seen yet", so the type is signed.
using SeqNo = std::int64_t;

/// Sentinel used by the AD algorithms before any alert is displayed.
inline constexpr SeqNo kNoSeqNo = -1;

/// One data update from a Data Monitor: a full snapshot of variable `var`
/// at sequence number `seqno`. Written 7x(3000) in the paper: the 7th
/// update of variable x, reporting value 3000.
struct Update {
  VarId var = 0;
  SeqNo seqno = 0;
  double value = 0.0;

  friend bool operator==(const Update&, const Update&) = default;
};

std::ostream& operator<<(std::ostream& os, const Update& u);

/// Interns human-readable variable names ("x", "reactor_temp") to dense
/// VarIds and back. Conditions built from the expression language resolve
/// their identifiers through a registry, and the examples use it to print
/// alerts with the original names.
class VariableRegistry {
 public:
  /// Returns the id for `name`, interning it on first use.
  VarId intern(std::string_view name);

  /// Returns the id for `name` if it was interned before.
  [[nodiscard]] bool lookup(std::string_view name, VarId& out) const;

  /// Returns the name for `id`. Precondition: `id` was produced by intern().
  [[nodiscard]] const std::string& name(VarId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> ids_;
};

}  // namespace rcm
