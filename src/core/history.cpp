#include "core/history.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcm {

History::History(int degree) : degree_(degree) {
  if (degree < 1) throw std::invalid_argument("History degree must be >= 1");
  buf_.reserve(static_cast<std::size_t>(degree));
}

void History::push(const Update& u) {
  if (buf_.size() == static_cast<std::size_t>(degree_))
    buf_.erase(buf_.begin());
  buf_.push_back(u);
}

const Update& History::at(int i) const {
  if (i > 0 || static_cast<std::size_t>(-i) >= buf_.size())
    throw std::out_of_range("History::at: index outside received window");
  return buf_[buf_.size() - 1 - static_cast<std::size_t>(-i)];
}

std::vector<SeqNo> History::seqnos_ascending() const {
  std::vector<SeqNo> out;
  out.reserve(buf_.size());
  for (const Update& u : buf_) out.push_back(u.seqno);
  return out;  // buf_ is oldest-first and seqnos only grow, so ascending
}

bool History::consecutive() const noexcept {
  for (std::size_t i = 1; i < buf_.size(); ++i)
    if (buf_[i].seqno != buf_[i - 1].seqno + 1) return false;
  return true;
}

void HistorySet::add_variable(VarId v, int degree) {
  auto it = histories_.find(v);
  if (it == histories_.end()) {
    histories_.emplace(v, History{degree});
  } else if (it->second.degree() < degree) {
    it->second = History{degree};
  }
}

void HistorySet::push(const Update& u) {
  auto it = histories_.find(u.var);
  if (it != histories_.end()) it->second.push(u);
}

bool HistorySet::contains(VarId v) const { return histories_.count(v) != 0; }

const History& HistorySet::of(VarId v) const {
  auto it = histories_.find(v);
  if (it == histories_.end())
    throw std::out_of_range("HistorySet::of: variable not in set");
  return it->second;
}

bool HistorySet::all_defined() const noexcept {
  return std::all_of(histories_.begin(), histories_.end(),
                     [](const auto& kv) { return kv.second.defined(); });
}

std::vector<VarId> HistorySet::variables() const {
  std::vector<VarId> out;
  out.reserve(histories_.size());
  for (const auto& [v, h] : histories_) out.push_back(v);
  return out;
}

void HistorySet::clear() noexcept {
  for (auto& [v, h] : histories_) h.clear();
}

}  // namespace rcm
