#include "core/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rcm {

ConditionEvaluator::ConditionEvaluator(ConditionPtr condition,
                                       std::string replica_id)
    : cond_(std::move(condition)), id_(std::move(replica_id)) {
  if (!cond_) throw std::invalid_argument("ConditionEvaluator: null condition");
  histories_ = cond_->make_history_set();
}

bool ConditionEvaluator::would_accept(const Update& u) const {
  const auto& vars = cond_->variables();
  if (std::find(vars.begin(), vars.end(), u.var) == vars.end()) return false;
  auto it = last_seen_.find(u.var);
  return it == last_seen_.end() || u.seqno > it->second;
}

std::optional<Alert> ConditionEvaluator::on_update(const Update& u) {
  if (!would_accept(u)) return std::nullopt;
  RCM_COUNT("evaluator.updates_processed");
  RCM_TRACE_SPAN(span, "ce.evaluate");
  span.var(u.var).seq(u.seqno);
  last_seen_[u.var] = u.seqno;
  received_.push_back(u);
  histories_.push(u);
  if (!histories_.all_defined()) return std::nullopt;
  if (!cond_->evaluate(histories_)) return std::nullopt;
  RCM_COUNT("evaluator.alerts_raised");
  Alert a = make_alert(std::string{cond_->name()}, histories_);
  // The alert inherits the trace of the update that triggered it (set by
  // the ingest path's ContextScope); a zero id means untraced.
  a.trace_id = obs::trace::current_context().trace_id;
  emitted_.push_back(a);
  return a;
}

void ConditionEvaluator::crash_reset() {
  histories_ = cond_->make_history_set();
  last_seen_.clear();
}

void ConditionEvaluator::restore_state(HistorySet h,
                                       std::map<VarId, SeqNo> last) {
  histories_ = std::move(h);
  last_seen_ = std::move(last);
}

bool ConditionEvaluator::replay_update(const Update& u) {
  if (!would_accept(u)) return false;
  last_seen_[u.var] = u.seqno;
  histories_.push(u);
  return true;
}

std::vector<Alert> evaluate_trace(const ConditionPtr& condition,
                                  std::span<const Update> u) {
  ConditionEvaluator ce{condition, "T"};
  std::vector<Alert> out;
  for (const Update& up : u) {
    if (auto a = ce.on_update(up)) out.push_back(std::move(*a));
  }
  return out;
}

}  // namespace rcm
