// Alerts (paper §2).
//
// When a condition evaluates to true, the CE emits an alert
// a(condname, histories) carrying the update histories used in the
// evaluation. The AD algorithms need the histories (or just their sequence
// numbers, or in the cheapest configurations only a checksum of them) to
// detect duplicates and conflicts. We carry the full per-variable windows
// and derive the cheaper representations from them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace rcm {

class HistorySet;

/// Identity of an alert as the AD algorithms see it: the condition name
/// plus, per variable, the ascending sequence numbers of the history window
/// the alert triggered on. Two alerts with equal keys are the "identical
/// alerts" Algorithm AD-1 deduplicates.
struct AlertKey {
  std::string cond;
  std::vector<std::pair<VarId, std::vector<SeqNo>>> signature;  // sorted by var

  friend bool operator==(const AlertKey&, const AlertKey&) = default;
  friend auto operator<=>(const AlertKey&, const AlertKey&) = default;
};

/// Hash functor so AlertKeys can live in unordered containers.
struct AlertKeyHash {
  std::size_t operator()(const AlertKey& k) const noexcept;
};

/// One alert. `histories` maps each variable of the condition to the
/// window of updates (ascending seqno) the CE evaluated on.
struct Alert {
  std::string cond;
  std::map<VarId, std::vector<Update>> histories;

  /// Observability correlation id (rcm::obs::trace) of the update that
  /// triggered this alert. NOT part of the alert's identity: excluded
  /// from key(), checksum(), operator== and the wire encodings, so
  /// tracing can never perturb filter decisions or run digests.
  std::uint64_t trace_id = 0;

  /// a.seqno.x of the paper: the sequence number of the last v-update
  /// received when the alert was triggered, i.e. H_v[0].seqno.
  /// Precondition: v is in `histories` and its window is non-empty.
  [[nodiscard]] SeqNo seqno(VarId v) const;

  /// Ascending history seqnos of variable v (empty if v not present).
  [[nodiscard]] std::vector<SeqNo> history_seqnos(VarId v) const;

  /// Identity used by the AD filters; see AlertKey.
  [[nodiscard]] AlertKey key() const;

  /// 64-bit digest of the key. The paper notes that ADs which only test
  /// history equality could ship a checksum instead of full histories;
  /// the wire-format ablation bench uses this.
  [[nodiscard]] std::uint64_t checksum() const noexcept;

  friend bool operator==(const Alert& a, const Alert& b) {
    return a.key() == b.key();
  }
};

std::ostream& operator<<(std::ostream& os, const Alert& a);

/// Builds the alert a(cond, H) for a condition that just triggered on the
/// given history set, copying each variable's currently-held window.
[[nodiscard]] Alert make_alert(std::string cond, const HistorySet& h);

/// Human-readable rendering using original variable names, e.g.
/// "overheat{x:[2,3]}".
[[nodiscard]] std::string to_string(const Alert& a,
                                    const VariableRegistry& vars);

}  // namespace rcm
