#include "core/bounded_ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcm {

Ad3BoundedFilter::Ad3BoundedFilter(SeqNo horizon) : horizon_(horizon) {
  if (horizon < 1)
    throw std::invalid_argument("Ad3BoundedFilter: horizon must be >= 1");
}

bool Ad3BoundedFilter::accepts(const Alert& a) const {
  if (seen_.count(a.key())) return false;
  for (const auto& [var, window] : a.histories) {
    auto it = state_.find(var);
    if (it == state_.end()) continue;
    const VarState& vs = it->second;
    SeqNo prev = kNoSeqNo;
    for (const Update& u : window) {
      if (vs.missed.count(u.seqno)) return false;
      if (prev != kNoSeqNo)
        for (SeqNo s = prev + 1; s < u.seqno; ++s)
          if (vs.received.count(s)) return false;
      prev = u.seqno;
    }
  }
  return true;
}

void Ad3BoundedFilter::record(const Alert& a) {
  SeqNo alert_max = kNoSeqNo;
  for (const auto& [var, window] : a.histories) {
    VarState& vs = state_[var];
    SeqNo prev = kNoSeqNo;
    for (const Update& u : window) {
      vs.received.insert(u.seqno);
      if (prev != kNoSeqNo)
        for (SeqNo s = prev + 1; s < u.seqno; ++s) vs.missed.insert(s);
      prev = u.seqno;
      if (u.seqno > vs.max_seen) vs.max_seen = u.seqno;
      if (u.seqno > alert_max) alert_max = u.seqno;
    }
    evict(vs);
  }
  seen_.insert(a.key());
  seen_by_seqno_.emplace(alert_max, a.key());
  // Evict duplicate keys whose newest seqno fell below the global floor
  // (the minimum floor over variables keeps eviction conservative).
  SeqNo min_floor = alert_max - horizon_;
  for (const auto& [var, vs] : state_)
    min_floor = std::min(min_floor, vs.max_seen - horizon_);
  auto it = seen_by_seqno_.begin();
  while (it != seen_by_seqno_.end() && it->first < min_floor) {
    seen_.erase(it->second);
    it = seen_by_seqno_.erase(it);
  }
}

std::string_view Ad3BoundedFilter::name() const noexcept {
  return "AD-3b";
}

void Ad3BoundedFilter::reset() {
  state_.clear();
  seen_.clear();
  seen_by_seqno_.clear();
}

std::size_t Ad3BoundedFilter::ledger_entries() const noexcept {
  std::size_t total = 0;
  for (const auto& [var, vs] : state_)
    total += vs.received.size() + vs.missed.size();
  return total;
}

void Ad3BoundedFilter::evict(VarState& vs) const {
  const SeqNo floor = vs.max_seen - horizon_;
  vs.received.erase(vs.received.begin(), vs.received.lower_bound(floor));
  vs.missed.erase(vs.missed.begin(), vs.missed.lower_bound(floor));
}

}  // namespace rcm
