#include "core/builtin_conditions.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace rcm {
namespace {

// Conservative evaluation helper: a conservative condition is false as
// soon as any referenced history window contains a seqno gap.
bool any_gap(const HistorySet& h, const std::vector<VarId>& vars) {
  return std::any_of(vars.begin(), vars.end(), [&](VarId v) {
    return !h.of(v).consecutive();
  });
}

}  // namespace

// ---------------------------------------------------------------- c1 ----

ThresholdCondition::ThresholdCondition(std::string name, VarId var,
                                       double threshold, bool above)
    : name_(std::move(name)), vars_{var}, threshold_(threshold), above_(above) {}

std::string_view ThresholdCondition::name() const noexcept { return name_; }

const std::vector<VarId>& ThresholdCondition::variables() const noexcept {
  return vars_;
}

int ThresholdCondition::degree(VarId v) const {
  if (v != vars_[0])
    throw std::invalid_argument("ThresholdCondition: variable not in V");
  return 1;
}

bool ThresholdCondition::evaluate(const HistorySet& h) const {
  const double v = h.of(vars_[0]).at(0).value;
  return above_ ? v > threshold_ : v < threshold_;
}

Triggering ThresholdCondition::triggering() const noexcept {
  // A degree-1 window cannot contain a gap, so the condition is vacuously
  // conservative.
  return Triggering::kConservative;
}

// ------------------------------------------------------------- c2/c3 ----

RiseCondition::RiseCondition(std::string name, VarId var, double delta,
                             Triggering trig)
    : name_(std::move(name)), vars_{var}, delta_(delta), trig_(trig) {}

std::string_view RiseCondition::name() const noexcept { return name_; }

const std::vector<VarId>& RiseCondition::variables() const noexcept {
  return vars_;
}

int RiseCondition::degree(VarId v) const {
  if (v != vars_[0])
    throw std::invalid_argument("RiseCondition: variable not in V");
  return 2;
}

bool RiseCondition::evaluate(const HistorySet& h) const {
  const History& hist = h.of(vars_[0]);
  if (trig_ == Triggering::kConservative && !hist.consecutive()) return false;
  return hist.at(0).value - hist.at(-1).value > delta_;
}

Triggering RiseCondition::triggering() const noexcept { return trig_; }

// ------------------------------------------------------- sharp drop -----

RelativeDropCondition::RelativeDropCondition(std::string name, VarId var,
                                             double fraction, Triggering trig)
    : name_(std::move(name)), vars_{var}, fraction_(fraction), trig_(trig) {}

std::string_view RelativeDropCondition::name() const noexcept { return name_; }

const std::vector<VarId>& RelativeDropCondition::variables() const noexcept {
  return vars_;
}

int RelativeDropCondition::degree(VarId v) const {
  if (v != vars_[0])
    throw std::invalid_argument("RelativeDropCondition: variable not in V");
  return 2;
}

bool RelativeDropCondition::evaluate(const HistorySet& h) const {
  const History& hist = h.of(vars_[0]);
  if (trig_ == Triggering::kConservative && !hist.consecutive()) return false;
  const double prev = hist.at(-1).value;
  const double cur = hist.at(0).value;
  if (prev == 0.0) return false;  // relative drop undefined from zero
  return (prev - cur) / prev > fraction_;
}

Triggering RelativeDropCondition::triggering() const noexcept { return trig_; }

// ----------------------------------------------------------------- cm ----

AbsDiffCondition::AbsDiffCondition(std::string name, VarId x, VarId y,
                                   double delta)
    : name_(std::move(name)), vars_{x, y}, delta_(delta) {
  if (x == y) throw std::invalid_argument("AbsDiffCondition: x == y");
  std::sort(vars_.begin(), vars_.end());
}

std::string_view AbsDiffCondition::name() const noexcept { return name_; }

const std::vector<VarId>& AbsDiffCondition::variables() const noexcept {
  return vars_;
}

int AbsDiffCondition::degree(VarId v) const {
  if (v != vars_[0] && v != vars_[1])
    throw std::invalid_argument("AbsDiffCondition: variable not in V");
  return 1;
}

bool AbsDiffCondition::evaluate(const HistorySet& h) const {
  const double a = h.of(vars_[0]).at(0).value;
  const double b = h.of(vars_[1]).at(0).value;
  return std::abs(a - b) > delta_;
}

Triggering AbsDiffCondition::triggering() const noexcept {
  return Triggering::kConservative;  // degree 1 everywhere, vacuously
}

// --------------------------------------------------------------- x>y ----

GreaterThanCondition::GreaterThanCondition(std::string name, VarId x, VarId y)
    : name_(std::move(name)), vars_{x, y}, x_(x), y_(y) {
  if (x == y) throw std::invalid_argument("GreaterThanCondition: x == y");
  std::sort(vars_.begin(), vars_.end());
}

std::string_view GreaterThanCondition::name() const noexcept { return name_; }

const std::vector<VarId>& GreaterThanCondition::variables() const noexcept {
  return vars_;
}

int GreaterThanCondition::degree(VarId v) const {
  if (v != vars_[0] && v != vars_[1])
    throw std::invalid_argument("GreaterThanCondition: variable not in V");
  return 1;
}

bool GreaterThanCondition::evaluate(const HistorySet& h) const {
  return h.of(x_).at(0).value > h.of(y_).at(0).value;
}

Triggering GreaterThanCondition::triggering() const noexcept {
  return Triggering::kConservative;
}

// --------------------------------------------------------- predicate ----

PredicateCondition::PredicateCondition(
    std::string name, std::vector<std::pair<VarId, int>> degrees,
    Triggering trig, Predicate pred)
    : name_(std::move(name)),
      degrees_(std::move(degrees)),
      trig_(trig),
      pred_(std::move(pred)) {
  if (degrees_.empty())
    throw std::invalid_argument("PredicateCondition: empty variable set");
  std::sort(degrees_.begin(), degrees_.end());
  for (const auto& [v, d] : degrees_) {
    if (d < 1)
      throw std::invalid_argument("PredicateCondition: degree must be >= 1");
    if (!vars_.empty() && vars_.back() == v)
      throw std::invalid_argument("PredicateCondition: duplicate variable");
    vars_.push_back(v);
  }
}

std::string_view PredicateCondition::name() const noexcept { return name_; }

const std::vector<VarId>& PredicateCondition::variables() const noexcept {
  return vars_;
}

int PredicateCondition::degree(VarId v) const {
  for (const auto& [var, d] : degrees_)
    if (var == v) return d;
  throw std::invalid_argument("PredicateCondition: variable not in V");
}

bool PredicateCondition::evaluate(const HistorySet& h) const {
  if (trig_ == Triggering::kConservative && any_gap(h, vars_)) return false;
  return pred_(h);
}

Triggering PredicateCondition::triggering() const noexcept { return trig_; }

// ------------------------------------------------------- disjunction ----

DisjunctionCondition::DisjunctionCondition(std::string name,
                                           std::vector<ConditionPtr> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
  if (parts_.empty())
    throw std::invalid_argument("DisjunctionCondition: no parts");
  std::set<VarId> vars;
  for (const auto& p : parts_)
    for (VarId v : p->variables()) vars.insert(v);
  vars_.assign(vars.begin(), vars.end());
}

std::string_view DisjunctionCondition::name() const noexcept { return name_; }

const std::vector<VarId>& DisjunctionCondition::variables() const noexcept {
  return vars_;
}

int DisjunctionCondition::degree(VarId v) const {
  int deg = 0;
  for (const auto& p : parts_) {
    const auto& pv = p->variables();
    if (std::find(pv.begin(), pv.end(), v) != pv.end())
      deg = std::max(deg, p->degree(v));
  }
  if (deg == 0)
    throw std::invalid_argument("DisjunctionCondition: variable not in V");
  return deg;
}

bool DisjunctionCondition::evaluate(const HistorySet& h) const {
  return std::any_of(parts_.begin(), parts_.end(),
                     [&](const ConditionPtr& p) { return p->evaluate(h); });
}

Triggering DisjunctionCondition::triggering() const noexcept {
  for (const auto& p : parts_)
    if (p->triggering() == Triggering::kAggressive)
      return Triggering::kAggressive;
  return Triggering::kConservative;
}

}  // namespace rcm
