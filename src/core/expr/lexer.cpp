#include "core/expr/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace rcm::expr {

const char* token_kind_name(TokenKind k) noexcept {
  switch (k) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kNumber: return "number";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::size_t pos) {
    Token t;
    t.kind = kind;
    t.pos = pos;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t pos = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // Number: digits, optional fraction, optional exponent.
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.'))
        ++j;
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.pos = pos;
      t.number = std::strtod(std::string(src.substr(i, j - i)).c_str(), nullptr);
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      Token t;
      t.kind = TokenKind::kIdent;
      t.pos = pos;
      t.text = std::string(src.substr(i, j - i));
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '[': push(TokenKind::kLBracket, pos); ++i; break;
      case ']': push(TokenKind::kRBracket, pos); ++i; break;
      case '(': push(TokenKind::kLParen, pos); ++i; break;
      case ')': push(TokenKind::kRParen, pos); ++i; break;
      case ',': push(TokenKind::kComma, pos); ++i; break;
      case '.': push(TokenKind::kDot, pos); ++i; break;
      case '+': push(TokenKind::kPlus, pos); ++i; break;
      case '-': push(TokenKind::kMinus, pos); ++i; break;
      case '*': push(TokenKind::kStar, pos); ++i; break;
      case '/': push(TokenKind::kSlash, pos); ++i; break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kLe, pos);
          i += 2;
        } else {
          push(TokenKind::kLt, pos);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kGe, pos);
          i += 2;
        } else {
          push(TokenKind::kGt, pos);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kEqEq, pos);
          i += 2;
        } else {
          throw SyntaxError("'=' is not an operator; use '=='", pos);
        }
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          push(TokenKind::kNotEq, pos);
          i += 2;
        } else {
          push(TokenKind::kNot, pos);
          ++i;
        }
        break;
      case '&':
        if (i + 1 < n && src[i + 1] == '&') {
          push(TokenKind::kAndAnd, pos);
          i += 2;
        } else {
          throw SyntaxError("single '&' is not an operator; use '&&'", pos);
        }
        break;
      case '|':
        if (i + 1 < n && src[i + 1] == '|') {
          push(TokenKind::kOrOr, pos);
          i += 2;
        } else {
          throw SyntaxError("single '|' is not an operator; use '||'", pos);
        }
        break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'", pos);
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace rcm::expr
