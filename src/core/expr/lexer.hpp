// Lexer for the condition expression language. See token.hpp for the
// language overview.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/expr/token.hpp"

namespace rcm::expr {

/// Thrown by the lexer and parser on malformed input; `pos()` is the byte
/// offset of the offending character or token.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, std::size_t pos)
      : std::runtime_error(message + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t pos_;
};

/// Tokenizes the whole source eagerly. Throws SyntaxError on characters
/// outside the language.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace rcm::expr
