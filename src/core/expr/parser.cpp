#include "core/expr/parser.hpp"

#include <cmath>
#include <sstream>
#include <utility>

namespace rcm::expr {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  NodePtr run() {
    NodePtr e = parse_or();
    expect(TokenKind::kEnd);
    return e;
  }

 private:
  const Token& peek() const { return tokens_[i_]; }
  const Token& advance() { return tokens_[i_++]; }
  bool match(TokenKind k) {
    if (peek().kind != k) return false;
    ++i_;
    return true;
  }
  void expect(TokenKind k) {
    if (peek().kind != k) {
      std::ostringstream msg;
      msg << "expected " << token_kind_name(k) << ", found "
          << token_kind_name(peek().kind);
      throw SyntaxError(msg.str(), peek().pos);
    }
    ++i_;
  }

  NodePtr parse_or() {
    NodePtr lhs = parse_and();
    while (peek().kind == TokenKind::kOrOr) {
      const std::size_t pos = advance().pos;
      lhs = make_binary(Binary::Op::kOr, std::move(lhs), parse_and(), pos);
    }
    return lhs;
  }

  NodePtr parse_and() {
    NodePtr lhs = parse_cmp();
    while (peek().kind == TokenKind::kAndAnd) {
      const std::size_t pos = advance().pos;
      lhs = make_binary(Binary::Op::kAnd, std::move(lhs), parse_cmp(), pos);
    }
    return lhs;
  }

  NodePtr parse_cmp() {
    NodePtr lhs = parse_add();
    Binary::Op op;
    switch (peek().kind) {
      case TokenKind::kLt: op = Binary::Op::kLt; break;
      case TokenKind::kLe: op = Binary::Op::kLe; break;
      case TokenKind::kGt: op = Binary::Op::kGt; break;
      case TokenKind::kGe: op = Binary::Op::kGe; break;
      case TokenKind::kEqEq: op = Binary::Op::kEq; break;
      case TokenKind::kNotEq: op = Binary::Op::kNe; break;
      default: return lhs;
    }
    const std::size_t pos = advance().pos;
    return make_binary(op, std::move(lhs), parse_add(), pos);
  }

  NodePtr parse_add() {
    NodePtr lhs = parse_mul();
    while (true) {
      Binary::Op op;
      if (peek().kind == TokenKind::kPlus)
        op = Binary::Op::kAdd;
      else if (peek().kind == TokenKind::kMinus)
        op = Binary::Op::kSub;
      else
        break;
      const std::size_t pos = advance().pos;
      lhs = make_binary(op, std::move(lhs), parse_mul(), pos);
    }
    return lhs;
  }

  NodePtr parse_mul() {
    NodePtr lhs = parse_unary();
    while (true) {
      Binary::Op op;
      if (peek().kind == TokenKind::kStar)
        op = Binary::Op::kMul;
      else if (peek().kind == TokenKind::kSlash)
        op = Binary::Op::kDiv;
      else
        break;
      const std::size_t pos = advance().pos;
      lhs = make_binary(op, std::move(lhs), parse_unary(), pos);
    }
    return lhs;
  }

  NodePtr parse_unary() {
    if (peek().kind == TokenKind::kMinus) {
      const std::size_t pos = advance().pos;
      auto node = std::make_unique<Unary>();
      node->op = Unary::Op::kNeg;
      node->child = parse_unary();
      node->pos = pos;
      return node;
    }
    if (peek().kind == TokenKind::kNot) {
      const std::size_t pos = advance().pos;
      auto node = std::make_unique<Unary>();
      node->op = Unary::Op::kNot;
      node->child = parse_unary();
      node->pos = pos;
      return node;
    }
    return parse_primary();
  }

  NodePtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        advance();
        auto node = std::make_unique<NumberLit>();
        node->value = t.number;
        node->pos = t.pos;
        return node;
      }
      case TokenKind::kLParen: {
        advance();
        NodePtr inner = parse_or();
        expect(TokenKind::kRParen);
        return inner;
      }
      case TokenKind::kIdent:
        return parse_ident();
      default: {
        std::ostringstream msg;
        msg << "expected expression, found " << token_kind_name(t.kind);
        throw SyntaxError(msg.str(), t.pos);
      }
    }
  }

  NodePtr parse_ident() {
    const Token t = advance();
    if (t.text == "true" || t.text == "false") {
      auto node = std::make_unique<BoolLit>();
      node->value = t.text == "true";
      node->pos = t.pos;
      return node;
    }
    if (t.text == "abs" || t.text == "min" || t.text == "max") {
      auto node = std::make_unique<Call>();
      node->fn = t.text == "abs"   ? Call::Fn::kAbs
                 : t.text == "min" ? Call::Fn::kMin
                                   : Call::Fn::kMax;
      node->pos = t.pos;
      expect(TokenKind::kLParen);
      node->args.push_back(parse_or());
      const std::size_t arity = t.text == "abs" ? 1 : 2;
      for (std::size_t i = 1; i < arity; ++i) {
        expect(TokenKind::kComma);
        node->args.push_back(parse_or());
      }
      expect(TokenKind::kRParen);
      return node;
    }
    if (t.text == "avg" || t.text == "sum" || t.text == "wmin" ||
        t.text == "wmax") {
      auto node = std::make_unique<WindowAgg>();
      node->op = t.text == "avg"    ? WindowAgg::Op::kAvg
                 : t.text == "sum"  ? WindowAgg::Op::kSum
                 : t.text == "wmin" ? WindowAgg::Op::kMin
                                    : WindowAgg::Op::kMax;
      node->pos = t.pos;
      expect(TokenKind::kLParen);
      if (peek().kind != TokenKind::kIdent)
        throw SyntaxError("window aggregate takes a variable name",
                          peek().pos);
      node->var = advance().text;
      expect(TokenKind::kComma);
      if (peek().kind != TokenKind::kNumber)
        throw SyntaxError("window size must be an integer literal",
                          peek().pos);
      const Token width = advance();
      if (width.number != std::floor(width.number) || width.number < 1 ||
          width.number > 1e6)
        throw SyntaxError("window size must be a positive integer",
                          width.pos);
      node->count = static_cast<int>(width.number);
      expect(TokenKind::kRParen);
      return node;
    }
    if (t.text == "consecutive") {
      auto node = std::make_unique<ConsecutiveRef>();
      node->pos = t.pos;
      expect(TokenKind::kLParen);
      if (peek().kind != TokenKind::kIdent)
        throw SyntaxError("consecutive() takes a variable name", peek().pos);
      node->var = advance().text;
      expect(TokenKind::kRParen);
      return node;
    }
    // History reference: IDENT '[' INT ']' ('.' field)?
    auto node = std::make_unique<HistoryRef>();
    node->var = t.text;
    node->pos = t.pos;
    expect(TokenKind::kLBracket);
    bool negative = false;
    if (match(TokenKind::kMinus)) negative = true;
    if (peek().kind != TokenKind::kNumber)
      throw SyntaxError("history index must be an integer literal",
                        peek().pos);
    const Token idx = advance();
    const double raw = idx.number;
    if (raw != std::floor(raw))
      throw SyntaxError("history index must be an integer", idx.pos);
    int index = static_cast<int>(raw);
    if (negative) index = -index;
    if (index > 0)
      throw SyntaxError("history index must be <= 0 (0 is most recent)",
                        idx.pos);
    node->index = index;
    expect(TokenKind::kRBracket);
    if (match(TokenKind::kDot)) {
      if (peek().kind != TokenKind::kIdent)
        throw SyntaxError("expected field name after '.'", peek().pos);
      const Token field = advance();
      if (field.text == "value")
        node->field = HistoryRef::Field::kValue;
      else if (field.text == "seqno")
        node->field = HistoryRef::Field::kSeqno;
      else
        throw SyntaxError("unknown field '" + field.text +
                              "'; expected 'value' or 'seqno'",
                          field.pos);
    }
    return node;
  }

  static NodePtr make_binary(Binary::Op op, NodePtr lhs, NodePtr rhs,
                             std::size_t pos) {
    auto node = std::make_unique<Binary>();
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    node->pos = pos;
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t i_ = 0;
};

}  // namespace

NodePtr parse(std::string_view source) {
  return Parser{tokenize(source)}.run();
}

}  // namespace rcm::expr
