#include "core/expr/ast.hpp"

#include <sstream>

namespace rcm::expr {
namespace {

class Printer final : public Visitor {
 public:
  std::string take() { return out_.str(); }

  void visit(const NumberLit& n) override { out_ << n.value; }

  void visit(const BoolLit& n) override { out_ << (n.value ? "true" : "false"); }

  void visit(const HistoryRef& n) override {
    out_ << n.var << "[" << n.index << "]";
    if (n.field == HistoryRef::Field::kSeqno) out_ << ".seqno";
  }

  void visit(const Unary& n) override {
    out_ << (n.op == Unary::Op::kNeg ? "-" : "!") << "(";
    n.child->accept(*this);
    out_ << ")";
  }

  void visit(const Binary& n) override {
    out_ << "(";
    n.lhs->accept(*this);
    out_ << " " << op_name(n.op) << " ";
    n.rhs->accept(*this);
    out_ << ")";
  }

  void visit(const Call& n) override {
    out_ << fn_name(n.fn) << "(";
    for (std::size_t i = 0; i < n.args.size(); ++i) {
      if (i) out_ << ", ";
      n.args[i]->accept(*this);
    }
    out_ << ")";
  }

  void visit(const ConsecutiveRef& n) override {
    out_ << "consecutive(" << n.var << ")";
  }

  void visit(const WindowAgg& n) override {
    out_ << agg_name(n.op) << "(" << n.var << ", " << n.count << ")";
  }

 private:
  static const char* op_name(Binary::Op op) {
    switch (op) {
      case Binary::Op::kAdd: return "+";
      case Binary::Op::kSub: return "-";
      case Binary::Op::kMul: return "*";
      case Binary::Op::kDiv: return "/";
      case Binary::Op::kLt: return "<";
      case Binary::Op::kLe: return "<=";
      case Binary::Op::kGt: return ">";
      case Binary::Op::kGe: return ">=";
      case Binary::Op::kEq: return "==";
      case Binary::Op::kNe: return "!=";
      case Binary::Op::kAnd: return "&&";
      case Binary::Op::kOr: return "||";
    }
    return "?";
  }

  static const char* fn_name(Call::Fn fn) {
    switch (fn) {
      case Call::Fn::kAbs: return "abs";
      case Call::Fn::kMin: return "min";
      case Call::Fn::kMax: return "max";
    }
    return "?";
  }

  static const char* agg_name(WindowAgg::Op op) {
    switch (op) {
      case WindowAgg::Op::kAvg: return "avg";
      case WindowAgg::Op::kSum: return "sum";
      case WindowAgg::Op::kMin: return "wmin";
      case WindowAgg::Op::kMax: return "wmax";
    }
    return "?";
  }

  std::ostringstream out_;
};

}  // namespace

std::string to_string(const Node& n) {
  Printer p;
  n.accept(p);
  return p.take();
}

}  // namespace rcm::expr
