#include "core/expr/analysis.hpp"

#include <algorithm>
#include <set>

namespace rcm::expr {
namespace {

class DegreeCollector final : public Visitor {
 public:
  DegreeMap take() { return std::move(degrees_); }

  void visit(const NumberLit&) override {}
  void visit(const BoolLit&) override {}

  void visit(const HistoryRef& n) override {
    int& d = degrees_[n.var];
    d = std::max(d, 1 - n.index);  // index <= 0, so 1 - index >= 1
  }

  void visit(const Unary& n) override { n.child->accept(*this); }

  void visit(const Binary& n) override {
    n.lhs->accept(*this);
    n.rhs->accept(*this);
  }

  void visit(const Call& n) override {
    for (const auto& a : n.args) a->accept(*this);
  }

  void visit(const ConsecutiveRef& n) override {
    // consecutive(v) over a single update is vacuously true; demanding
    // degree 2 makes it actually observe loss.
    int& d = degrees_[n.var];
    d = std::max(d, 2);
  }

  void visit(const WindowAgg& n) override {
    int& d = degrees_[n.var];
    d = std::max(d, n.count);
  }

 private:
  DegreeMap degrees_;
};

class TypeChecker final : public Visitor {
 public:
  Type result() const { return type_; }

  void visit(const NumberLit&) override { type_ = Type::kNumber; }
  void visit(const BoolLit&) override { type_ = Type::kBool; }
  void visit(const HistoryRef&) override { type_ = Type::kNumber; }

  void visit(const Unary& n) override {
    n.child->accept(*this);
    if (n.op == Unary::Op::kNeg) {
      require(Type::kNumber, "operand of unary '-'");
      type_ = Type::kNumber;
    } else {
      require(Type::kBool, "operand of '!'");
      type_ = Type::kBool;
    }
  }

  void visit(const Binary& n) override {
    n.lhs->accept(*this);
    const Type lhs = type_;
    n.rhs->accept(*this);
    const Type rhs = type_;
    switch (n.op) {
      case Binary::Op::kAdd:
      case Binary::Op::kSub:
      case Binary::Op::kMul:
      case Binary::Op::kDiv:
        check(lhs == Type::kNumber && rhs == Type::kNumber,
              "arithmetic requires numeric operands");
        type_ = Type::kNumber;
        break;
      case Binary::Op::kLt:
      case Binary::Op::kLe:
      case Binary::Op::kGt:
      case Binary::Op::kGe:
      case Binary::Op::kEq:
      case Binary::Op::kNe:
        check(lhs == Type::kNumber && rhs == Type::kNumber,
              "comparison requires numeric operands");
        type_ = Type::kBool;
        break;
      case Binary::Op::kAnd:
      case Binary::Op::kOr:
        check(lhs == Type::kBool && rhs == Type::kBool,
              "'&&' and '||' require boolean operands");
        type_ = Type::kBool;
        break;
    }
  }

  void visit(const Call& n) override {
    for (const auto& a : n.args) {
      a->accept(*this);
      require(Type::kNumber, "intrinsic argument");
    }
    type_ = Type::kNumber;
  }

  void visit(const ConsecutiveRef&) override { type_ = Type::kBool; }

  void visit(const WindowAgg&) override { type_ = Type::kNumber; }

 private:
  void require(Type t, const char* what) {
    check(type_ == t, std::string(what) + " has the wrong type");
  }
  static void check(bool ok, const std::string& msg) {
    if (!ok) throw AnalysisError(msg);
  }
  Type type_ = Type::kNumber;
};

// Collects the variables guarded by top-level consecutive() conjuncts:
// walks the chain of '&&' at the root and records ConsecutiveRef leaves.
void collect_guards(const Node& n, std::set<std::string>& out);

class GuardCollector final : public Visitor {
 public:
  explicit GuardCollector(std::set<std::string>& out) : out_(out) {}

  void visit(const NumberLit&) override {}
  void visit(const BoolLit&) override {}
  void visit(const HistoryRef&) override {}
  void visit(const Unary&) override {}

  void visit(const Binary& n) override {
    if (n.op == Binary::Op::kAnd) {
      collect_guards(*n.lhs, out_);
      collect_guards(*n.rhs, out_);
    }
  }

  void visit(const Call&) override {}

  void visit(const ConsecutiveRef& n) override { out_.insert(n.var); }

  void visit(const WindowAgg&) override {}

 private:
  std::set<std::string>& out_;
};

void collect_guards(const Node& n, std::set<std::string>& out) {
  GuardCollector g{out};
  n.accept(g);
}

}  // namespace

DegreeMap infer_degrees(const Node& root) {
  DegreeCollector c;
  root.accept(c);
  DegreeMap degrees = c.take();
  if (degrees.empty())
    throw AnalysisError("condition references no variable");
  return degrees;
}

Type check_types(const Node& root) {
  TypeChecker t;
  root.accept(t);
  return t.result();
}

bool is_conservative(const Node& root) {
  const DegreeMap degrees = infer_degrees(root);
  std::set<std::string> guarded;
  collect_guards(root, guarded);
  for (const auto& [var, degree] : degrees)
    if (degree >= 2 && guarded.count(var) == 0) return false;
  return true;
}

rcm::Triggering infer_triggering(const Node& root) {
  return is_conservative(root) ? rcm::Triggering::kConservative
                               : rcm::Triggering::kAggressive;
}

}  // namespace rcm::expr
