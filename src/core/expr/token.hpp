// Tokens of the condition expression language.
//
// The language lets users write conditions as text instead of subclassing
// rcm::Condition, e.g.
//
//   "x[0] > 3000"                                   (c1)
//   "x[0] - x[-1] > 200"                            (c2, aggressive)
//   "x[0] - x[-1] > 200 && consecutive(x)"          (c3, conservative)
//   "abs(x[0] - y[0]) > 100"                        (cm, Theorem 10)
//
// `v[i]` reads H_v[i].value (i <= 0); `v[i].seqno` reads the sequence
// number; `consecutive(v)` is true iff H_v holds consecutive seqnos.
#pragma once

#include <string>

namespace rcm::expr {

enum class TokenKind {
  kEnd,
  kNumber,      // 3000, 0.2, 1e-3
  kIdent,       // variable names and function names
  kLBracket,    // [
  kRBracket,    // ]
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kDot,         // .
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kEqEq,        // ==
  kNotEq,       // !=
  kAndAnd,      // &&
  kOrOr,        // ||
  kNot,         // !
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier spelling (kIdent)
  double number = 0.0;  // numeric value (kNumber)
  std::size_t pos = 0;  // byte offset in the source, for diagnostics
};

/// Printable token kind name for error messages.
[[nodiscard]] const char* token_kind_name(TokenKind k) noexcept;

}  // namespace rcm::expr
