// Recursive-descent parser for the condition expression language.
//
// Grammar (lowest to highest precedence):
//   expr   := or
//   or     := and ( '||' and )*
//   and    := cmp ( '&&' cmp )*
//   cmp    := add ( ('<'|'<='|'>'|'>='|'=='|'!=') add )?
//   add    := mul ( ('+'|'-') mul )*
//   mul    := unary ( ('*'|'/') unary )*
//   unary  := ('-'|'!') unary | primary
//   primary:= NUMBER | 'true' | 'false'
//           | 'abs' '(' expr ')' | 'min' '(' expr ',' expr ')'
//           | 'max' '(' expr ',' expr ')'
//           | 'consecutive' '(' IDENT ')'
//           | IDENT '[' INT ']' ( '.' ('value'|'seqno') )?
//           | '(' expr ')'
//
// History indices must be integer literals <= 0 (optionally written with
// a leading '-'); conditions of data-dependent degree are exactly the
// "infinite degree" conditions the paper excludes.
#pragma once

#include <string_view>

#include "core/expr/ast.hpp"
#include "core/expr/lexer.hpp"

namespace rcm::expr {

/// Parses `source` into an AST. Throws SyntaxError on malformed input.
[[nodiscard]] NodePtr parse(std::string_view source);

}  // namespace rcm::expr
