#include "core/expr/expression_condition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <variant>

#include "core/expr/analysis.hpp"
#include "core/expr/parser.hpp"

namespace rcm::expr {
namespace {

using Value = std::variant<double, bool>;

/// Evaluates a type-checked AST over a history set. Because check_types
/// ran at compile time, the std::get calls here cannot throw.
class Evaluator final : public Visitor {
 public:
  Evaluator(const rcm::HistorySet& h,
            const std::map<std::string, rcm::VarId>& binding)
      : h_(h), binding_(binding) {}

  Value result() const { return value_; }

  void visit(const NumberLit& n) override { value_ = n.value; }
  void visit(const BoolLit& n) override { value_ = n.value; }

  void visit(const HistoryRef& n) override {
    const rcm::Update& u = h_.of(binding_.at(n.var)).at(n.index);
    value_ = n.field == HistoryRef::Field::kValue
                 ? u.value
                 : static_cast<double>(u.seqno);
  }

  void visit(const Unary& n) override {
    n.child->accept(*this);
    if (n.op == Unary::Op::kNeg)
      value_ = -std::get<double>(value_);
    else
      value_ = !std::get<bool>(value_);
  }

  void visit(const Binary& n) override {
    // Short-circuit the logical operators.
    if (n.op == Binary::Op::kAnd || n.op == Binary::Op::kOr) {
      n.lhs->accept(*this);
      const bool lhs = std::get<bool>(value_);
      if (n.op == Binary::Op::kAnd && !lhs) return;  // value_ stays false
      if (n.op == Binary::Op::kOr && lhs) return;    // value_ stays true
      n.rhs->accept(*this);
      return;
    }
    n.lhs->accept(*this);
    const double lhs = std::get<double>(value_);
    n.rhs->accept(*this);
    const double rhs = std::get<double>(value_);
    switch (n.op) {
      case Binary::Op::kAdd: value_ = lhs + rhs; break;
      case Binary::Op::kSub: value_ = lhs - rhs; break;
      case Binary::Op::kMul: value_ = lhs * rhs; break;
      case Binary::Op::kDiv: value_ = lhs / rhs; break;
      case Binary::Op::kLt: value_ = lhs < rhs; break;
      case Binary::Op::kLe: value_ = lhs <= rhs; break;
      case Binary::Op::kGt: value_ = lhs > rhs; break;
      case Binary::Op::kGe: value_ = lhs >= rhs; break;
      case Binary::Op::kEq: value_ = lhs == rhs; break;
      case Binary::Op::kNe: value_ = lhs != rhs; break;
      case Binary::Op::kAnd:
      case Binary::Op::kOr: break;  // handled above
    }
  }

  void visit(const Call& n) override {
    n.args[0]->accept(*this);
    const double a = std::get<double>(value_);
    switch (n.fn) {
      case Call::Fn::kAbs:
        value_ = std::abs(a);
        return;
      case Call::Fn::kMin:
      case Call::Fn::kMax: {
        n.args[1]->accept(*this);
        const double b = std::get<double>(value_);
        value_ = n.fn == Call::Fn::kMin ? std::min(a, b) : std::max(a, b);
        return;
      }
    }
  }

  void visit(const ConsecutiveRef& n) override {
    value_ = h_.of(binding_.at(n.var)).consecutive();
  }

  void visit(const WindowAgg& n) override {
    const rcm::History& hist = h_.of(binding_.at(n.var));
    double acc = n.op == WindowAgg::Op::kMin
                     ? std::numeric_limits<double>::infinity()
                 : n.op == WindowAgg::Op::kMax
                     ? -std::numeric_limits<double>::infinity()
                     : 0.0;
    for (int i = 0; i < n.count; ++i) {
      const double v = hist.at(-i).value;
      switch (n.op) {
        case WindowAgg::Op::kAvg:
        case WindowAgg::Op::kSum: acc += v; break;
        case WindowAgg::Op::kMin: acc = std::min(acc, v); break;
        case WindowAgg::Op::kMax: acc = std::max(acc, v); break;
      }
    }
    if (n.op == WindowAgg::Op::kAvg) acc /= n.count;
    value_ = acc;
  }

 private:
  const rcm::HistorySet& h_;
  const std::map<std::string, rcm::VarId>& binding_;
  Value value_ = 0.0;
};

}  // namespace

ExpressionCondition::ExpressionCondition(std::string name, NodePtr root,
                                         rcm::VariableRegistry& vars)
    : name_(std::move(name)), root_(std::move(root)) {
  if (!root_) throw std::invalid_argument("ExpressionCondition: null AST");
  if (check_types(*root_) != Type::kBool)
    throw AnalysisError("condition must be a boolean expression");
  triggering_ = infer_triggering(*root_);
  for (const auto& [var_name, degree] : infer_degrees(*root_)) {
    const rcm::VarId id = vars.intern(var_name);
    binding_[var_name] = id;
    degrees_[id] = degree;
    vars_.push_back(id);
  }
  std::sort(vars_.begin(), vars_.end());
}

std::string_view ExpressionCondition::name() const noexcept { return name_; }

const std::vector<rcm::VarId>& ExpressionCondition::variables()
    const noexcept {
  return vars_;
}

int ExpressionCondition::degree(rcm::VarId v) const {
  auto it = degrees_.find(v);
  if (it == degrees_.end())
    throw std::invalid_argument("ExpressionCondition: variable not in V");
  return it->second;
}

bool ExpressionCondition::evaluate(const rcm::HistorySet& h) const {
  Evaluator e{h, binding_};
  root_->accept(e);
  return std::get<bool>(e.result());
}

rcm::Triggering ExpressionCondition::triggering() const noexcept {
  return triggering_;
}

std::string ExpressionCondition::source() const { return to_string(*root_); }

rcm::ConditionPtr compile_condition(std::string name, std::string_view source,
                                    rcm::VariableRegistry& vars) {
  return std::make_shared<const ExpressionCondition>(std::move(name),
                                                     parse(source), vars);
}

}  // namespace rcm::expr
