// ExpressionCondition: a Condition compiled from expression-language
// source. The front door of the library for user-defined conditions:
//
//   VariableRegistry vars;
//   auto c1 = compile_condition("overheat", "x[0] > 3000", vars);
//   auto c3 = compile_condition(
//       "rise", "x[0] - x[-1] > 200 && consecutive(x)", vars);
//
// Degrees, variable set and triggering class are inferred statically
// (see analysis.hpp), so the CE sizes its history buffers correctly and
// the experiment harness can classify the scenario.
#pragma once

#include <string>
#include <string_view>

#include "core/condition.hpp"
#include "core/expr/ast.hpp"
#include "core/types.hpp"

namespace rcm::expr {

/// Condition backed by a parsed, type-checked expression AST.
class ExpressionCondition final : public rcm::Condition {
 public:
  /// Prefer compile_condition(); this constructor takes ownership of an
  /// already-parsed AST. Throws AnalysisError / SyntaxError on problems.
  ExpressionCondition(std::string name, NodePtr root,
                      rcm::VariableRegistry& vars);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] const std::vector<rcm::VarId>& variables() const noexcept override;
  [[nodiscard]] int degree(rcm::VarId v) const override;
  [[nodiscard]] bool evaluate(const rcm::HistorySet& h) const override;
  [[nodiscard]] rcm::Triggering triggering() const noexcept override;

  /// Canonical source rendering of the compiled expression.
  [[nodiscard]] std::string source() const;

 private:
  std::string name_;
  NodePtr root_;
  std::vector<rcm::VarId> vars_;
  std::map<std::string, rcm::VarId> binding_;
  std::map<rcm::VarId, int> degrees_;
  rcm::Triggering triggering_;
};

/// Parses, type-checks and binds `source` against `vars` (interning any
/// new variable names). Throws SyntaxError or AnalysisError on problems.
[[nodiscard]] rcm::ConditionPtr compile_condition(std::string name,
                                                  std::string_view source,
                                                  rcm::VariableRegistry& vars);

}  // namespace rcm::expr
