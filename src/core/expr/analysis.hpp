// Static analyses over condition expression ASTs:
//
//  - degree inference: the degree of the condition w.r.t. variable v is
//    1 + max(-index) over all history references v[index] (paper §2:
//    a condition using only Hx[0] and Hx[-2] is of degree 3);
//    consecutive(v) demands at least degree 2, otherwise it is vacuous;
//  - type checking: arithmetic over numbers, logic over booleans,
//    comparisons number x number -> boolean; the whole condition must be
//    boolean;
//  - conservativeness detection: the condition is conservative iff every
//    variable of degree >= 2 is guarded by a top-level `consecutive(v)`
//    conjunct, which structurally forces the expression to false whenever
//    that variable's window has a gap.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "core/condition.hpp"
#include "core/expr/ast.hpp"

namespace rcm::expr {

/// Thrown by the analyses on ill-typed or ill-formed expressions.
class AnalysisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Expression value types.
enum class Type { kNumber, kBool };

/// Variable name -> degree; insertion-free view of the condition's V.
using DegreeMap = std::map<std::string, int>;

/// Infers the degree of every referenced variable. Throws AnalysisError
/// if the expression references no variable at all.
[[nodiscard]] DegreeMap infer_degrees(const Node& root);

/// Type-checks the expression; returns the root type and throws
/// AnalysisError on a mismatch (e.g. `x[0] && 3`).
Type check_types(const Node& root);

/// True iff every variable with degree >= 2 has a top-level
/// `consecutive(v)` conjunct (see file comment).
[[nodiscard]] bool is_conservative(const Node& root);

/// Convenience: triggering class per the analysis above.
[[nodiscard]] rcm::Triggering infer_triggering(const Node& root);

}  // namespace rcm::expr
