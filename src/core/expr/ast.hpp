// Abstract syntax tree of the condition expression language.
//
// The AST is immutable after parsing. Analyses (variable set, degree
// inference, conservativeness detection, type checking) and evaluation
// walk it through the small visitor below.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace rcm::expr {

struct NumberLit;
struct BoolLit;
struct HistoryRef;
struct Unary;
struct Binary;
struct Call;
struct ConsecutiveRef;
struct WindowAgg;

/// Visitor over the node types. Implementations return through their own
/// state; the visit functions are void to keep the hierarchy simple.
class Visitor {
 public:
  virtual ~Visitor() = default;
  virtual void visit(const NumberLit&) = 0;
  virtual void visit(const BoolLit&) = 0;
  virtual void visit(const HistoryRef&) = 0;
  virtual void visit(const Unary&) = 0;
  virtual void visit(const Binary&) = 0;
  virtual void visit(const Call&) = 0;
  virtual void visit(const ConsecutiveRef&) = 0;
  virtual void visit(const WindowAgg&) = 0;
};

struct Node {
  virtual ~Node() = default;
  virtual void accept(Visitor& v) const = 0;
  std::size_t pos = 0;  // source offset, for diagnostics
};

using NodePtr = std::unique_ptr<Node>;

/// Numeric literal: 3000, 0.2, 1e6.
struct NumberLit final : Node {
  double value = 0.0;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Boolean literal: true / false.
struct BoolLit final : Node {
  bool value = false;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// History access v[i] or v[i].seqno with i <= 0: reads H_v[i].
struct HistoryRef final : Node {
  enum class Field { kValue, kSeqno };
  std::string var;
  int index = 0;  // 0 = most recent, -1 = previous, ...
  Field field = Field::kValue;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Unary operators.
struct Unary final : Node {
  enum class Op { kNeg, kNot };
  Op op = Op::kNeg;
  NodePtr child;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Binary operators.
struct Binary final : Node {
  enum class Op {
    kAdd, kSub, kMul, kDiv,
    kLt, kLe, kGt, kGe, kEq, kNe,
    kAnd, kOr,
  };
  Op op = Op::kAdd;
  NodePtr lhs;
  NodePtr rhs;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Numeric intrinsic call: abs(e), min(a, b), max(a, b).
struct Call final : Node {
  enum class Fn { kAbs, kMin, kMax };
  Fn fn = Fn::kAbs;
  std::vector<NodePtr> args;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// consecutive(v): true iff the seqnos currently in H_v are consecutive.
/// This is the language's only loss-detection primitive; putting it in a
/// top-level conjunct for every historical variable is what makes a
/// condition conservative.
struct ConsecutiveRef final : Node {
  std::string var;
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Window aggregate over the last `count` received values of a variable:
/// avg(v, k), sum(v, k), wmin(v, k), wmax(v, k). A fixed-size window
/// keeps the condition's degree finite (the paper excludes unbounded
/// aggregates like "maximum of all previous readings"); the condition's
/// degree w.r.t. v becomes at least `count`.
struct WindowAgg final : Node {
  enum class Op { kAvg, kSum, kMin, kMax };
  Op op = Op::kAvg;
  std::string var;
  int count = 1;  // >= 1, a literal
  void accept(Visitor& v) const override { v.visit(*this); }
};

/// Renders the AST back to a canonical source string (used in tests and
/// in error messages).
[[nodiscard]] std::string to_string(const Node& n);

}  // namespace rcm::expr
