// File-backed durable logs.
//
// AlertLog (alert_log.hpp) keeps the in-memory state; FileAlertLog adds
// a write-ahead file so the log survives real process crashes, matching
// the paper's assumption that the CE durably stores alerts for later
// delivery. The file is a stream of CRC-framed records (wire/frame.hpp):
//
//   record := frame( type:u8 | body )
//   type 'V' (0x56): body = format_id:u8 | major:u8 | minor:u8 |
//                    extension section            (file format header)
//   type 'A' (0x41): body = wire-encoded alert (appended entry)
//   type 'K' (0x4b): body = varint(upto)      (cumulative ack)
//
// FileUpdateLog is the same contract for data updates: the service's CE
// replicas use it as the write-ahead log of updates accepted since the
// last evaluator-state checkpoint (wire/snapshot.hpp), so a killed
// replica recovers as checkpoint + WAL replay. Each record is one
// framed wire-encoded update; truncate() empties the file after a new
// checkpoint supersedes it.
//
// Versioning (docs/SERVICE.md, "Format versioning & rolling upgrades"):
// a v2+ file begins with a 'V' header record naming its format and
// version. Headerless files are v1 — everything a pre-versioning binary
// wrote — and recover exactly as before. In a versioned file, unknown
// record types are counted in skipped_records and skipped (a v2 reader
// rolls past v2.x record types it doesn't know); in a v1 file they
// count as corruption, as they always did. A header with a major beyond
// the supported range throws wire::UnsupportedVersion — the one case
// where recovery throws on file *content*, because silently replaying a
// half-understood future format would be worse than stopping.
//
// Recovery scans the file with FrameCursor semantics: a torn or corrupt
// tail (e.g. a crash mid-write) is detected by the CRC and everything
// before it is recovered — the standard write-ahead-log contract. A
// truncation at ANY byte offset therefore recovers a strict prefix of
// the appended records, never garbage (pinned by tests).
#pragma once

#include <filesystem>
#include <fstream>
#include <span>

#include "core/types.hpp"
#include "store/alert_log.hpp"
#include "wire/version.hpp"

namespace rcm::store {

/// Record type tags (first payload byte of each frame).
inline constexpr std::uint8_t kVersionRecord = 0x56;  // 'V'
inline constexpr std::uint8_t kAlertRecord = 0x41;    // 'A'
inline constexpr std::uint8_t kAckRecord = 0x4b;      // 'K'

/// Format ids carried inside a 'V' header record.
inline constexpr std::uint8_t kAlertLogFormatId = 0x41;  // 'A'
inline constexpr std::uint8_t kUpdateLogFormatId = 0x55;  // 'U'

/// Version written by this binary; v1 is the headerless legacy layout.
inline constexpr wire::VersionHeader kLogFormatVersion{2, 0};
inline constexpr std::uint8_t kLogMinMajor = 1;
inline constexpr std::uint8_t kLogMaxMajor = 2;

/// Builds the (unframed) payload of a 'V' file-format header record.
[[nodiscard]] std::vector<std::uint8_t> encode_log_header(
    std::uint8_t format_id, wire::VersionHeader version);

/// Result of scanning a log file.
struct RecoveredLog {
  AlertLog log;
  std::size_t records = 0;          ///< applied records
  std::size_t corrupt_frames = 0;   ///< CRC failures / torn tail frames
  std::size_t skipped_records = 0;  ///< unknown record types in a v2+ file
  wire::VersionHeader version{1, 0};  ///< from the header record, if any
  bool versioned = false;             ///< file carried a header record
};

/// Reads and replays a log file. A missing file recovers to an empty
/// log. Throws std::runtime_error only on I/O errors and
/// wire::UnsupportedVersion only on a header record from a future major
/// — never on corruption, which is expected after a crash and reported
/// in the result.
[[nodiscard]] RecoveredLog recover_log(const std::filesystem::path& path);
/// Same recovery over an in-memory file image (fuzzing and tests).
[[nodiscard]] RecoveredLog recover_log_bytes(
    std::span<const std::uint8_t> bytes);

/// Durable alert log: every mutation is framed, appended and flushed to
/// `path` before the in-memory state changes. A newly created (or
/// empty) file gets a 'V' format header record first.
class FileAlertLog {
 public:
  /// Opens (creating if needed) and recovers `path`. The recovered
  /// in-memory state is available immediately via log().
  explicit FileAlertLog(std::filesystem::path path);

  /// Durably appends an alert; returns its index.
  AlertLog::Index append(const Alert& a);

  /// Durably records a cumulative acknowledgement.
  void ack(AlertLog::Index upto);

  [[nodiscard]] const AlertLog& log() const noexcept { return log_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::size_t recovered_corrupt_frames() const noexcept {
    return recovered_corrupt_;
  }

 private:
  void write_record(std::uint8_t type,
                    const std::vector<std::uint8_t>& body);

  std::filesystem::path path_;
  std::ofstream out_;
  AlertLog log_;
  std::size_t recovered_corrupt_ = 0;
};

/// Result of scanning an update WAL file.
struct RecoveredUpdates {
  std::vector<Update> updates;      ///< the recovered prefix, in order
  std::size_t corrupt_frames = 0;   ///< CRC failures / torn tail frames
  std::size_t skipped_records = 0;  ///< unknown record types in a v2+ file
  wire::VersionHeader version{1, 0};  ///< from the header record, if any
  bool versioned = false;             ///< file carried a header record
};

/// Reads an update WAL. A missing file recovers to an empty sequence.
/// Throws std::runtime_error only on I/O errors and
/// wire::UnsupportedVersion only on a future-major header record, never
/// on corruption.
[[nodiscard]] RecoveredUpdates recover_updates(
    const std::filesystem::path& path);
/// Same recovery over an in-memory file image (fuzzing and tests).
[[nodiscard]] RecoveredUpdates recover_update_bytes(
    std::span<const std::uint8_t> bytes);

/// Durable update write-ahead log: every append is framed and flushed to
/// `path` before it returns. A newly created (or empty) file gets a 'V'
/// format header record first; appends to an existing v1 file keep it
/// headerless so a not-yet-upgraded reader can still replay it.
class FileUpdateLog {
 public:
  /// Opens (creating if needed) `path` for appending. Does NOT read the
  /// file — call recover_updates first when recovering, then construct.
  explicit FileUpdateLog(std::filesystem::path path);

  /// Durably appends one update.
  void append(const Update& u);

  /// Empties the file: the updates it held are now covered by a
  /// checkpoint. Durable before return. Rewrites the format header.
  void truncate();

  /// Update records appended since open/truncate (the header record is
  /// format plumbing, not an appended record, and is not counted).
  [[nodiscard]] std::size_t appended() const noexcept { return appended_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  void write_header_if_empty();

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t appended_ = 0;  ///< records appended since open/truncate
};

}  // namespace rcm::store
