// File-backed durable logs.
//
// AlertLog (alert_log.hpp) keeps the in-memory state; FileAlertLog adds
// a write-ahead file so the log survives real process crashes, matching
// the paper's assumption that the CE durably stores alerts for later
// delivery. The file is a stream of CRC-framed records (wire/frame.hpp):
//
//   record := frame( type:u8 | body )
//   type 'A' (0x41): body = wire-encoded alert (appended entry)
//   type 'K' (0x4b): body = varint(upto)      (cumulative ack)
//
// FileUpdateLog is the same contract for data updates: the service's CE
// replicas use it as the write-ahead log of updates accepted since the
// last evaluator-state checkpoint (wire/snapshot.hpp), so a killed
// replica recovers as checkpoint + WAL replay. Each record is one
// framed wire-encoded update; truncate() empties the file after a new
// checkpoint supersedes it.
//
// Recovery scans the file with FrameCursor semantics: a torn or corrupt
// tail (e.g. a crash mid-write) is detected by the CRC and everything
// before it is recovered — the standard write-ahead-log contract. A
// truncation at ANY byte offset therefore recovers a strict prefix of
// the appended records, never garbage (pinned by tests).
#pragma once

#include <filesystem>
#include <fstream>

#include "core/types.hpp"
#include "store/alert_log.hpp"

namespace rcm::store {

/// Result of scanning a log file.
struct RecoveredLog {
  AlertLog log;
  std::size_t records = 0;          ///< applied records
  std::size_t corrupt_frames = 0;   ///< CRC failures / torn tail frames
};

/// Reads and replays a log file. A missing file recovers to an empty
/// log. Throws std::runtime_error only on I/O errors (not corruption —
/// corruption is expected after a crash and is reported in the result).
[[nodiscard]] RecoveredLog recover_log(const std::filesystem::path& path);

/// Durable alert log: every mutation is framed, appended and flushed to
/// `path` before the in-memory state changes.
class FileAlertLog {
 public:
  /// Opens (creating if needed) and recovers `path`. The recovered
  /// in-memory state is available immediately via log().
  explicit FileAlertLog(std::filesystem::path path);

  /// Durably appends an alert; returns its index.
  AlertLog::Index append(const Alert& a);

  /// Durably records a cumulative acknowledgement.
  void ack(AlertLog::Index upto);

  [[nodiscard]] const AlertLog& log() const noexcept { return log_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::size_t recovered_corrupt_frames() const noexcept {
    return recovered_corrupt_;
  }

 private:
  void write_record(std::uint8_t type,
                    const std::vector<std::uint8_t>& body);

  std::filesystem::path path_;
  std::ofstream out_;
  AlertLog log_;
  std::size_t recovered_corrupt_ = 0;
};

/// Result of scanning an update WAL file.
struct RecoveredUpdates {
  std::vector<Update> updates;      ///< the recovered prefix, in order
  std::size_t corrupt_frames = 0;   ///< CRC failures / torn tail frames
};

/// Reads an update WAL. A missing file recovers to an empty sequence.
/// Throws std::runtime_error only on I/O errors, never on corruption.
[[nodiscard]] RecoveredUpdates recover_updates(
    const std::filesystem::path& path);

/// Durable update write-ahead log: every append is framed and flushed to
/// `path` before it returns.
class FileUpdateLog {
 public:
  /// Opens (creating if needed) `path` for appending. Does NOT read the
  /// file — call recover_updates first when recovering, then construct.
  explicit FileUpdateLog(std::filesystem::path path);

  /// Durably appends one update.
  void append(const Update& u);

  /// Empties the file: the updates it held are now covered by a
  /// checkpoint. Durable before return.
  void truncate();

  [[nodiscard]] std::size_t appended() const noexcept { return appended_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t appended_ = 0;  ///< records appended since open/truncate
};

}  // namespace rcm::store
