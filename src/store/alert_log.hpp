// Durable alert log (paper §1/§2.1): "If the PDA is off or disconnected,
// the CE logs the alert, and sends it later, when the AD becomes
// available" — and the back links justify their lossless model partly
// because "the CE is expected to buffer and store the alerts anyway".
//
// AlertLog is an append-only, acknowledgeable log of alerts. Entries get
// monotonically increasing indices; the unacknowledged suffix is what a
// store-and-forward sender (AlertOutbox) retransmits. The log snapshots
// to wire-format bytes and restores from them, which is how the tests and
// the simulator model durability across CE crashes without touching the
// filesystem.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/alert.hpp"

namespace rcm::store {

/// Append-only log with cumulative acknowledgement.
class AlertLog {
 public:
  using Index = std::uint64_t;

  /// Appends an alert; returns its index (0-based, monotonically
  /// increasing, never reused).
  Index append(const Alert& a);

  /// Cumulatively acknowledges every entry with index <= `upto`.
  /// Acknowledging an index beyond the log or below the current ack
  /// level is harmless (idempotent, monotone).
  void ack(Index upto);

  /// Entries not yet acknowledged, ascending by index.
  [[nodiscard]] std::vector<std::pair<Index, Alert>> pending() const;

  /// Total entries ever appended.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Index the next append will get.
  [[nodiscard]] Index next_index() const noexcept { return entries_.size(); }

  /// Highest acknowledged index + 1 (0 when nothing is acked).
  [[nodiscard]] Index ack_level() const noexcept { return acked_; }

  /// Entry access. Precondition: i < size().
  [[nodiscard]] const Alert& at(Index i) const;

  /// Wire-format snapshot of the whole log (entries + ack level).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Restores a log from serialize() output; throws wire::DecodeError on
  /// malformed input.
  [[nodiscard]] static AlertLog deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<Alert> entries_;
  Index acked_ = 0;  // entries [0, acked_) are acknowledged
};

}  // namespace rcm::store
