#include "store/file_log.hpp"

#include <stdexcept>
#include <vector>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::store {
namespace {

constexpr std::uint8_t kAlertRecord = 0x41;  // 'A'
constexpr std::uint8_t kAckRecord = 0x4b;    // 'K'

}  // namespace

RecoveredLog recover_log(const std::filesystem::path& path) {
  RecoveredLog out;
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return out;  // no file yet: empty log

  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) throw std::runtime_error("recover_log: read error");

  wire::FrameCursor cursor;
  cursor.feed(bytes);
  while (auto payload = cursor.next()) {
    try {
      wire::Reader r{*payload};
      const std::uint8_t type = r.u8();
      if (type == kAlertRecord) {
        // The remainder of the payload is one encoded alert.
        const std::span<const std::uint8_t> rest{
            payload->data() + 1, payload->size() - 1};
        (void)out.log.append(wire::decode_alert(rest).alert);
      } else if (type == kAckRecord) {
        out.log.ack(r.varint());
      } else {
        ++out.corrupt_frames;  // unknown record type
        continue;
      }
      ++out.records;
    } catch (const wire::DecodeError&) {
      ++out.corrupt_frames;
    }
  }
  out.corrupt_frames += cursor.corrupt_frames();
  return out;
}

FileAlertLog::FileAlertLog(std::filesystem::path path)
    : path_(std::move(path)) {
  RecoveredLog recovered = recover_log(path_);
  log_ = std::move(recovered.log);
  recovered_corrupt_ = recovered.corrupt_frames;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open())
    throw std::runtime_error("FileAlertLog: cannot open " + path_.string());
}

AlertLog::Index FileAlertLog::append(const Alert& a) {
  write_record(kAlertRecord,
               wire::encode_alert(a, wire::AlertEncoding::kFullHistories));
  return log_.append(a);
}

void FileAlertLog::ack(AlertLog::Index upto) {
  wire::Writer w;
  w.varint(upto);
  write_record(kAckRecord, w.take());
  log_.ack(upto);
}

void FileAlertLog::write_record(std::uint8_t type,
                                const std::vector<std::uint8_t>& body) {
  wire::Writer payload;
  payload.u8(type);
  payload.raw(body);
  const auto framed = wire::frame(payload.bytes());
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good())
    throw std::runtime_error("FileAlertLog: write failed on " +
                             path_.string());
}

RecoveredUpdates recover_updates(const std::filesystem::path& path) {
  RecoveredUpdates out;
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return out;  // no file yet: empty WAL

  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) throw std::runtime_error("recover_updates: read error");

  wire::FrameCursor cursor;
  cursor.feed(bytes);
  while (auto payload = cursor.next()) {
    try {
      out.updates.push_back(wire::decode_update(*payload));
    } catch (const wire::DecodeError&) {
      ++out.corrupt_frames;
    }
  }
  out.corrupt_frames += cursor.corrupt_frames();
  return out;
}

FileUpdateLog::FileUpdateLog(std::filesystem::path path)
    : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open())
    throw std::runtime_error("FileUpdateLog: cannot open " + path_.string());
}

void FileUpdateLog::append(const Update& u) {
  const auto framed = wire::frame(wire::encode_update(u));
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good())
    throw std::runtime_error("FileUpdateLog: write failed on " +
                             path_.string());
  ++appended_;
}

void FileUpdateLog::truncate() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open())
    throw std::runtime_error("FileUpdateLog: truncate failed on " +
                             path_.string());
  out_.flush();
  appended_ = 0;
}

}  // namespace rcm::store
