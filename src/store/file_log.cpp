#include "store/file_log.hpp"

#include <stdexcept>
#include <vector>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::store {
namespace {

// First byte of an encoded update (wire/codec.cpp's kUpdateTag): in a
// versioned WAL it distinguishes "corrupt update record" from "unknown
// future record type".
constexpr std::uint8_t kUpdateTag = 0x75;  // 'u'

std::vector<std::uint8_t> read_file(const std::filesystem::path& path,
                                    const char* who, bool& existed) {
  std::ifstream in{path, std::ios::binary};
  existed = in.is_open();
  if (!existed) return {};
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad())
    throw std::runtime_error(std::string{who} + ": read error");
  return bytes;
}

/// Parses a 'V' header payload (after the type byte). Throws
/// UnsupportedVersion on a future major, DecodeError on malformation or
/// a format id that does not match this log kind.
wire::VersionHeader parse_log_header(wire::Reader& r, std::uint8_t format_id,
                                     const char* format_name) {
  if (r.u8() != format_id)
    throw wire::DecodeError("log header: wrong format id");
  const wire::VersionHeader v =
      wire::decode_version(r, format_name, kLogMinMajor, kLogMaxMajor);
  (void)wire::decode_extension_section(r, nullptr);
  r.expect_done();
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_log_header(std::uint8_t format_id,
                                            wire::VersionHeader version) {
  wire::Writer w;
  w.u8(kVersionRecord);
  w.u8(format_id);
  wire::encode_version(w, version);
  wire::encode_extension_section(w, {});
  return w.take();
}

RecoveredLog recover_log_bytes(std::span<const std::uint8_t> bytes) {
  RecoveredLog out;
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  while (auto payload = cursor.next()) {
    try {
      wire::Reader r{*payload};
      const std::uint8_t type = r.u8();
      if (type == kVersionRecord) {
        out.version = parse_log_header(r, kAlertLogFormatId, "alert log");
        out.versioned = true;
        continue;
      }
      if (type == kAlertRecord) {
        // The remainder of the payload is one encoded alert.
        const std::span<const std::uint8_t> rest{
            payload->data() + 1, payload->size() - 1};
        (void)out.log.append(wire::decode_alert(rest).alert);
      } else if (type == kAckRecord) {
        out.log.ack(r.varint());
      } else if (out.versioned) {
        ++out.skipped_records;  // some v2.x record type we don't know
        continue;
      } else {
        ++out.corrupt_frames;  // v1 file: unknown record type is corruption
        continue;
      }
      ++out.records;
    } catch (const wire::UnsupportedVersion&) {
      throw;  // deliberate incompatibility, not corruption
    } catch (const wire::DecodeError&) {
      ++out.corrupt_frames;
    }
  }
  out.corrupt_frames += cursor.corrupt_frames();
  return out;
}

RecoveredLog recover_log(const std::filesystem::path& path) {
  bool existed = false;
  const auto bytes = read_file(path, "recover_log", existed);
  if (!existed) return {};  // no file yet: empty log
  return recover_log_bytes(bytes);
}

FileAlertLog::FileAlertLog(std::filesystem::path path)
    : path_(std::move(path)) {
  RecoveredLog recovered = recover_log(path_);
  log_ = std::move(recovered.log);
  recovered_corrupt_ = recovered.corrupt_frames;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open())
    throw std::runtime_error("FileAlertLog: cannot open " + path_.string());
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (!ec && size == 0) {
    const auto framed = wire::frame(
        encode_log_header(kAlertLogFormatId, kLogFormatVersion));
    out_.write(reinterpret_cast<const char*>(framed.data()),
               static_cast<std::streamsize>(framed.size()));
    out_.flush();
    if (!out_.good())
      throw std::runtime_error("FileAlertLog: header write failed on " +
                               path_.string());
  }
}

AlertLog::Index FileAlertLog::append(const Alert& a) {
  write_record(kAlertRecord,
               wire::encode_alert(a, wire::AlertEncoding::kFullHistories));
  return log_.append(a);
}

void FileAlertLog::ack(AlertLog::Index upto) {
  wire::Writer w;
  w.varint(upto);
  write_record(kAckRecord, w.take());
  log_.ack(upto);
}

void FileAlertLog::write_record(std::uint8_t type,
                                const std::vector<std::uint8_t>& body) {
  wire::Writer payload;
  payload.u8(type);
  payload.raw(body);
  const auto framed = wire::frame(payload.bytes());
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good())
    throw std::runtime_error("FileAlertLog: write failed on " +
                             path_.string());
}

RecoveredUpdates recover_update_bytes(std::span<const std::uint8_t> bytes) {
  RecoveredUpdates out;
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  while (auto payload = cursor.next()) {
    if (!payload->empty() && (*payload)[0] == kVersionRecord) {
      try {
        wire::Reader r{*payload};
        (void)r.u8();  // type
        out.version = parse_log_header(r, kUpdateLogFormatId, "update WAL");
        out.versioned = true;
      } catch (const wire::UnsupportedVersion&) {
        throw;  // deliberate incompatibility, not corruption
      } catch (const wire::DecodeError&) {
        ++out.corrupt_frames;
      }
      continue;
    }
    try {
      out.updates.push_back(wire::decode_update(*payload));
    } catch (const wire::DecodeError&) {
      if (out.versioned && !payload->empty() && (*payload)[0] != kUpdateTag) {
        ++out.skipped_records;  // some v2.x record type we don't know
      } else {
        ++out.corrupt_frames;
      }
    }
  }
  out.corrupt_frames += cursor.corrupt_frames();
  return out;
}

RecoveredUpdates recover_updates(const std::filesystem::path& path) {
  bool existed = false;
  const auto bytes = read_file(path, "recover_updates", existed);
  if (!existed) return {};  // no file yet: empty WAL
  return recover_update_bytes(bytes);
}

FileUpdateLog::FileUpdateLog(std::filesystem::path path)
    : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open())
    throw std::runtime_error("FileUpdateLog: cannot open " + path_.string());
  write_header_if_empty();
}

void FileUpdateLog::write_header_if_empty() {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec || size != 0) return;
  const auto framed =
      wire::frame(encode_log_header(kUpdateLogFormatId, kLogFormatVersion));
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good())
    throw std::runtime_error("FileUpdateLog: header write failed on " +
                             path_.string());
}

void FileUpdateLog::append(const Update& u) {
  const auto framed = wire::frame(wire::encode_update(u));
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good())
    throw std::runtime_error("FileUpdateLog: write failed on " +
                             path_.string());
  ++appended_;
}

void FileUpdateLog::truncate() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open())
    throw std::runtime_error("FileUpdateLog: truncate failed on " +
                             path_.string());
  out_.flush();
  appended_ = 0;
  write_header_if_empty();
}

}  // namespace rcm::store
