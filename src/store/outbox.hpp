// Store-and-forward sender for the CE -> AD path.
//
// The CE submits every raised alert to its outbox. While the displayer
// is reachable, submissions are sent immediately; while it is not, they
// accumulate in the durable AlertLog. On (re)connection the whole
// unacknowledged suffix is retransmitted in order. Entries are removed
// from the pending set only by cumulative acknowledgement from the
// receiver, so the path is lossless end-to-end even across AD outages
// and in-flight drops — the paper's TCP-plus-CE-buffering back link.
//
// The receiver must deduplicate by (sender, index); retransmission makes
// delivery at-least-once per index.
#pragma once

#include <functional>

#include "store/alert_log.hpp"

namespace rcm::store {

/// CE-side store-and-forward sender.
class AlertOutbox {
 public:
  /// `send` transmits one log entry toward the displayer; it is invoked
  /// only while the outbox believes the displayer is reachable.
  using SendFn = std::function<void(AlertLog::Index, const Alert&)>;

  explicit AlertOutbox(SendFn send);

  /// Logs an alert and, if connected, sends it immediately.
  AlertLog::Index submit(const Alert& a);

  /// Connection-state change. Transitioning to connected retransmits the
  /// entire unacknowledged suffix in order.
  void set_connected(bool connected);

  /// Cumulative acknowledgement from the receiver.
  void on_ack(AlertLog::Index upto) { log_.ack(upto); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] const AlertLog& log() const noexcept { return log_; }
  [[nodiscard]] std::size_t retransmissions() const noexcept {
    return retransmissions_;
  }

  /// Simulated crash-recovery: restores the durable log from a snapshot,
  /// disconnected. (The paper's CE logs alerts durably; volatile state
  /// dies with the process, the log does not.)
  void restore(AlertLog log);

 private:
  void flush();

  SendFn send_;
  AlertLog log_;
  bool connected_ = false;
  std::size_t retransmissions_ = 0;
  /// Lowest index never yet transmitted; flush-sends below it are
  /// retransmissions.
  AlertLog::Index sent_watermark_ = 0;
};

}  // namespace rcm::store
