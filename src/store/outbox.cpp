#include "store/outbox.hpp"

#include <stdexcept>

namespace rcm::store {

AlertOutbox::AlertOutbox(SendFn send) : send_(std::move(send)) {
  if (!send_) throw std::invalid_argument("AlertOutbox: null send function");
}

AlertLog::Index AlertOutbox::submit(const Alert& a) {
  const AlertLog::Index index = log_.append(a);
  if (connected_) {
    sent_watermark_ = index + 1;
    send_(index, a);
  }
  return index;
}

void AlertOutbox::set_connected(bool connected) {
  const bool was = connected_;
  connected_ = connected;
  if (!was && connected) flush();
}

void AlertOutbox::restore(AlertLog log) {
  log_ = std::move(log);
  connected_ = false;
  // Conservatively assume nothing in flight survives the crash; anything
  // pending will be (re)sent on the next connect.
  sent_watermark_ = log_.ack_level();
}

void AlertOutbox::flush() {
  for (const auto& [index, alert] : log_.pending()) {
    if (index < sent_watermark_) ++retransmissions_;
    send_(index, alert);
  }
  sent_watermark_ = log_.next_index();
}

}  // namespace rcm::store
