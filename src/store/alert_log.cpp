#include "store/alert_log.hpp"

#include <algorithm>
#include <stdexcept>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace rcm::store {

AlertLog::Index AlertLog::append(const Alert& a) {
  entries_.push_back(a);
  return entries_.size() - 1;
}

void AlertLog::ack(Index upto) {
  acked_ = std::max(acked_, std::min<Index>(upto + 1, entries_.size()));
}

std::vector<std::pair<AlertLog::Index, Alert>> AlertLog::pending() const {
  std::vector<std::pair<Index, Alert>> out;
  for (Index i = acked_; i < entries_.size(); ++i)
    out.emplace_back(i, entries_[static_cast<std::size_t>(i)]);
  return out;
}

const Alert& AlertLog::at(Index i) const {
  if (i >= entries_.size())
    throw std::out_of_range("AlertLog::at: index beyond log");
  return entries_[static_cast<std::size_t>(i)];
}

std::vector<std::uint8_t> AlertLog::serialize() const {
  wire::Writer w;
  w.varint(entries_.size());
  w.varint(acked_);
  for (const Alert& a : entries_) {
    const auto bytes =
        wire::encode_alert(a, wire::AlertEncoding::kFullHistories);
    w.varint(bytes.size());
    w.raw(bytes);
  }
  return w.take();
}

AlertLog AlertLog::deserialize(std::span<const std::uint8_t> bytes) {
  wire::Reader r{bytes};
  AlertLog log;
  const std::uint64_t count = r.varint();
  const std::uint64_t acked = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.varint();
    if (len > (1u << 20)) throw wire::DecodeError("log entry too large");
    std::vector<std::uint8_t> entry;
    entry.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t b = 0; b < len; ++b) entry.push_back(r.u8());
    log.entries_.push_back(wire::decode_alert(entry).alert);
  }
  if (acked > count) throw wire::DecodeError("ack level beyond log size");
  log.acked_ = acked;
  r.expect_done();
  return log;
}

}  // namespace rcm::store
