#include "wire/health.hpp"

namespace rcm::wire {

namespace {

constexpr std::uint8_t kHealthTag = 0x68;  // 'h'

// Hostile-input bounds, matching the spirit of codec.cpp's caps.
constexpr std::size_t kMaxReplicas = 4096;
constexpr std::size_t kMaxRates = 256;
constexpr std::size_t kMaxDegradations = 256;
constexpr std::size_t kMaxDetailLen = 256;

}  // namespace

const char* degradation_kind_name(DegradationKind k) noexcept {
  switch (k) {
    case DegradationKind::kReplicaDown: return "replica_down";
    case DegradationKind::kHeartbeatMissed: return "heartbeat_missed";
    case DegradationKind::kWalFlushSlow: return "wal_flush_slow";
    case DegradationKind::kEventLoopStalled: return "event_loop_stalled";
    case DegradationKind::kSessionLagExceeded: return "session_lag_exceeded";
    case DegradationKind::kAdStalled: return "ad_stalled";
    case DegradationKind::kUnreachable: return "unreachable";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_instance_health(const InstanceHealth& h) {
  Writer w;
  w.u8(kHealthTag);
  encode_version(w, kHealthVersion);
  w.u8(static_cast<std::uint8_t>(h.role));
  w.varint(h.shard_id);
  w.varint(h.epoch);
  w.u8(h.healthy ? 1 : 0);
  w.varint(h.uptime_ns);
  w.varint(h.sessions);
  w.varint(h.max_session_lag);
  w.varint(h.alert_queue_depth);
  w.varint(h.replicas.size());
  for (const ReplicaHealth& r : h.replicas) {
    w.varint(r.replica);
    w.u8(r.up ? 1 : 0);
    w.varint(r.incarnations);
    w.varint(r.heartbeat_age_ns);
    w.varint(r.accepted);
    w.varint(r.wal_records);
  }
  w.varint(h.rates.size());
  for (const RateSample& r : h.rates) {
    w.string(r.name);
    w.f64(r.rate_10s);
    w.f64(r.rate_1m);
    w.f64(r.rate_5m);
  }
  w.varint(h.degradations.size());
  for (const Degradation& d : h.degradations) {
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.string(d.detail);
    w.varint(d.value);
  }
  encode_extension_section(w, {});
  return w.take();
}

InstanceHealth decode_instance_health(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kHealthTag) throw DecodeError("not a health document");
  (void)decode_version(r, "health document", kHealthMinMajor,
                       kHealthMaxMajor);
  InstanceHealth h;
  const std::uint8_t role = r.u8();
  if (role > static_cast<std::uint8_t>(InstanceRole::kMerge))
    throw DecodeError("unknown instance role");
  h.role = static_cast<InstanceRole>(role);
  h.shard_id = static_cast<std::uint32_t>(r.varint());
  h.epoch = r.varint();
  h.healthy = r.u8() != 0;
  h.uptime_ns = r.varint();
  h.sessions = r.varint();
  h.max_session_lag = r.varint();
  h.alert_queue_depth = r.varint();
  const std::uint64_t nreplicas = r.varint();
  if (nreplicas > kMaxReplicas) throw DecodeError("too many replica entries");
  h.replicas.reserve(static_cast<std::size_t>(nreplicas));
  for (std::uint64_t i = 0; i < nreplicas; ++i) {
    ReplicaHealth rep;
    rep.replica = static_cast<std::uint32_t>(r.varint());
    rep.up = r.u8() != 0;
    rep.incarnations = r.varint();
    rep.heartbeat_age_ns = r.varint();
    rep.accepted = r.varint();
    rep.wal_records = r.varint();
    h.replicas.push_back(rep);
  }
  const std::uint64_t nrates = r.varint();
  if (nrates > kMaxRates) throw DecodeError("too many rate entries");
  h.rates.reserve(static_cast<std::size_t>(nrates));
  for (std::uint64_t i = 0; i < nrates; ++i) {
    RateSample rate;
    rate.name = r.string();
    rate.rate_10s = r.f64();
    rate.rate_1m = r.f64();
    rate.rate_5m = r.f64();
    h.rates.push_back(std::move(rate));
  }
  const std::uint64_t ndeg = r.varint();
  if (ndeg > kMaxDegradations) throw DecodeError("too many degradations");
  h.degradations.reserve(static_cast<std::size_t>(ndeg));
  for (std::uint64_t i = 0; i < ndeg; ++i) {
    Degradation d;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(DegradationKind::kUnreachable))
      throw DecodeError("unknown degradation kind");
    d.kind = static_cast<DegradationKind>(kind);
    d.detail = r.string(kMaxDetailLen);
    d.value = r.varint();
    h.degradations.push_back(std::move(d));
  }
  (void)decode_extension_section(r, nullptr);  // skip unknown tags
  r.expect_done();
  return h;
}

}  // namespace rcm::wire
