#include "wire/snapshot.hpp"

#include <algorithm>

namespace rcm::wire {
namespace {

constexpr std::uint8_t kSnapshotTagV1 = 0x73;  // 's'
constexpr std::uint8_t kSnapshotTagV2 = 0x53;  // 'S'

}  // namespace

namespace detail {

void encode_snapshot_body(Writer& w, const ConditionEvaluator& ce) {
  const auto& last_seen = ce.last_seen();
  w.varint(last_seen.size());
  for (const auto& [var, seqno] : last_seen) {
    w.varint(var);
    w.svarint(seqno);
  }

  const HistorySet& h = ce.histories();
  const auto vars = h.variables();
  w.varint(vars.size());
  for (VarId v : vars) {
    const History& hist = h.of(v);
    w.varint(v);
    w.varint(static_cast<std::uint64_t>(hist.degree()));
    w.varint(hist.size());
    // Oldest first; delta-encode seqnos.
    SeqNo prev = 0;
    for (int i = -(static_cast<int>(hist.size()) - 1); i <= 0; ++i) {
      const Update& u = hist.at(i);
      w.svarint(u.seqno - prev);
      prev = u.seqno;
      w.f64(u.value);
    }
  }
}

SnapshotBody decode_snapshot_body(Reader& r, const ConditionEvaluator& ce) {
  std::map<VarId, SeqNo> last_seen;
  const std::uint64_t watermarks = r.varint();
  if (watermarks > 4096) throw DecodeError("too many watermarks");
  for (std::uint64_t i = 0; i < watermarks; ++i) {
    const VarId var = static_cast<VarId>(r.varint());
    last_seen[var] = r.svarint();
  }

  const Condition& cond = ce.condition();
  const auto& cond_vars = cond.variables();
  HistorySet h = cond.make_history_set();

  const std::uint64_t vars = r.varint();
  if (vars != cond_vars.size())
    throw DecodeError("snapshot variable count does not match condition");
  for (std::uint64_t i = 0; i < vars; ++i) {
    const VarId var = static_cast<VarId>(r.varint());
    if (std::find(cond_vars.begin(), cond_vars.end(), var) ==
        cond_vars.end())
      throw DecodeError("snapshot variable not in condition");
    const auto degree = static_cast<int>(r.varint());
    if (degree != cond.degree(var))
      throw DecodeError("snapshot degree does not match condition");
    const std::uint64_t count = r.varint();
    if (count > static_cast<std::uint64_t>(degree))
      throw DecodeError("snapshot window longer than its degree");
    SeqNo prev = 0;
    for (std::uint64_t j = 0; j < count; ++j) {
      Update u;
      u.var = var;
      u.seqno = prev + r.svarint();
      prev = u.seqno;
      u.value = r.f64();
      h.push(u);
    }
  }
  return SnapshotBody{std::move(h), std::move(last_seen)};
}

}  // namespace detail

std::vector<std::uint8_t> encode_evaluator_state(
    const ConditionEvaluator& ce) {
  Writer w;
  w.u8(kSnapshotTagV2);
  encode_version(w, kSnapshotVersion);
  detail::encode_snapshot_body(w, ce);
  encode_extension_section(w, {});  // none yet; room for v2.x fields
  return w.take();
}

void decode_evaluator_state(std::span<const std::uint8_t> bytes,
                            ConditionEvaluator& ce) {
  Reader r{bytes};
  const std::uint8_t tag = r.u8();
  if (tag == kSnapshotTagV1) {
    // Legacy headerless snapshot: body is the whole message.
    detail::SnapshotBody body = detail::decode_snapshot_body(r, ce);
    r.expect_done();
    ce.restore_state(std::move(body.histories), std::move(body.last_seen));
    return;
  }
  if (tag != kSnapshotTagV2) throw DecodeError("not an evaluator snapshot");
  (void)decode_version(r, "evaluator snapshot", kSnapshotMinMajor,
                       kSnapshotMaxMajor);
  detail::SnapshotBody body = detail::decode_snapshot_body(r, ce);
  (void)decode_extension_section(r, nullptr);  // skip unknown v2.x fields
  r.expect_done();
  ce.restore_state(std::move(body.histories), std::move(body.last_seen));
}

}  // namespace rcm::wire
