#include "wire/session.hpp"

#include "wire/frame.hpp"

namespace rcm::wire {
namespace {

// Cursor-file record type tags (same 'V'-header convention as
// store/file_log.hpp; 'C' is the cursor record).
constexpr std::uint8_t kCursorVersionRecord = 0x56;  // 'V'
constexpr std::uint8_t kCursorRecordTag = 0x43;      // 'C'

/// Parses a cursor-file 'V' header payload (after the type byte).
VersionHeader parse_cursor_header(Reader& r) {
  if (r.u8() != kCursorFormatId)
    throw DecodeError("cursor file header: wrong format id");
  const VersionHeader v =
      decode_version(r, "session cursor file", kCursorMinMajor,
                     kCursorMaxMajor);
  (void)decode_extension_section(r, nullptr);
  r.expect_done();
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_session_hello(const SessionHello& hello) {
  Writer w;
  w.u8(kSessionHelloTag);
  encode_version(w, hello.version);
  w.string(hello.session_id);
  w.u8(hello.from.has_value() ? 1 : 0);
  if (hello.from) w.varint(*hello.from);
  encode_extension_section(w, {});
  return w.take();
}

SessionHello decode_session_hello(std::span<const std::uint8_t> payload) {
  Reader r{payload};
  if (r.u8() != kSessionHelloTag)
    throw DecodeError("not a session hello");
  SessionHello hello;
  hello.version = decode_version(r, "session hello", kSessionMinMajor,
                                 kSessionMaxMajor);
  hello.session_id = r.string(kMaxSessionIdLen);
  if (hello.session_id.empty())
    throw DecodeError("session hello: empty session id");
  const std::uint8_t has_from = r.u8();
  if (has_from > 1) throw DecodeError("session hello: bad from flag");
  if (has_from == 1) hello.from = r.varint();
  (void)decode_extension_section(r, nullptr);
  r.expect_done();
  return hello;
}

std::vector<std::uint8_t> encode_session_welcome(
    const SessionWelcome& welcome) {
  Writer w;
  w.u8(kSessionWelcomeTag);
  encode_version(w, welcome.version);
  w.u8(static_cast<std::uint8_t>(welcome.status));
  w.varint(welcome.start_index);
  w.varint(welcome.log_end);
  if (welcome.status == SessionWelcomeStatus::kTruncated) {
    w.varint(welcome.lost_from);
    w.varint(welcome.lost_to);
  }
  encode_extension_section(w, {});
  return w.take();
}

SessionWelcome decode_session_welcome(std::span<const std::uint8_t> payload) {
  Reader r{payload};
  if (r.u8() != kSessionWelcomeTag)
    throw DecodeError("not a session welcome");
  SessionWelcome welcome;
  welcome.version = decode_version(r, "session welcome", kSessionMinMajor,
                                   kSessionMaxMajor);
  const std::uint8_t raw_status = r.u8();
  if (raw_status > static_cast<std::uint8_t>(SessionWelcomeStatus::kBadCursor))
    throw DecodeError("session welcome: unknown status");
  welcome.status = static_cast<SessionWelcomeStatus>(raw_status);
  welcome.start_index = r.varint();
  welcome.log_end = r.varint();
  if (welcome.status == SessionWelcomeStatus::kTruncated) {
    welcome.lost_from = r.varint();
    welcome.lost_to = r.varint();
    if (welcome.lost_from >= welcome.lost_to)
      throw DecodeError("session welcome: empty truncation range");
  }
  (void)decode_extension_section(r, nullptr);
  r.expect_done();
  return welcome;
}

std::vector<std::uint8_t> encode_session_alert(
    std::uint64_t index, std::span<const std::uint8_t> alert_bytes) {
  Writer w;
  w.u8(kSessionAlertTag);
  w.varint(index);
  w.raw(alert_bytes);
  return w.take();
}

std::vector<std::uint8_t> encode_session_evicted(std::uint64_t next_index,
                                                 std::uint64_t lag) {
  Writer w;
  w.u8(kSessionEvictedTag);
  w.varint(next_index);
  w.varint(lag);
  return w.take();
}

SessionRecord decode_session_record(std::span<const std::uint8_t> payload) {
  Reader r{payload};
  const std::uint8_t tag = r.u8();
  SessionRecord rec;
  if (tag == kSessionAlertTag) {
    rec.kind = SessionRecord::Kind::kAlert;
    rec.index = r.varint();
    // The remainder of the payload is one wire-encoded alert.
    rec.alert = decode_alert(r.bytes(r.remaining()));
    return rec;
  }
  if (tag == kSessionEvictedTag) {
    rec.kind = SessionRecord::Kind::kEvicted;
    rec.index = r.varint();
    rec.lag = r.varint();
    r.expect_done();
    return rec;
  }
  throw DecodeError("unknown session record tag");
}

std::vector<std::uint8_t> encode_session_ack(std::uint64_t upto) {
  Writer w;
  w.u8(kSessionAckTag);
  w.varint(upto);
  return w.take();
}

std::uint64_t decode_session_ack(std::span<const std::uint8_t> payload) {
  Reader r{payload};
  if (r.u8() != kSessionAckTag) throw DecodeError("not a session ack");
  const std::uint64_t upto = r.varint();
  r.expect_done();
  return upto;
}

std::vector<std::uint8_t> encode_cursor_file_header() {
  Writer w;
  w.u8(kCursorVersionRecord);
  w.u8(kCursorFormatId);
  encode_version(w, kCursorFormatVersion);
  encode_extension_section(w, {});
  return w.take();
}

std::vector<std::uint8_t> encode_cursor_record(const std::string& session_id,
                                               const CursorEntry& entry) {
  Writer w;
  w.u8(kCursorRecordTag);
  w.string(session_id);
  w.varint(entry.acked);
  w.u8(entry.evicted ? 1 : 0);
  return w.take();
}

RecoveredCursors recover_cursor_bytes(std::span<const std::uint8_t> bytes) {
  RecoveredCursors out;
  FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  while (auto payload = cursor.next()) {
    try {
      Reader r{*payload};
      const std::uint8_t type = r.u8();
      if (type == kCursorVersionRecord) {
        out.version = parse_cursor_header(r);
        out.versioned = true;
        continue;
      }
      if (type == kCursorRecordTag) {
        const std::string id = r.string(kMaxSessionIdLen);
        CursorEntry entry;
        entry.acked = r.varint();
        const std::uint8_t evicted = r.u8();
        if (evicted > 1)
          throw DecodeError("cursor record: bad evicted flag");
        entry.evicted = evicted == 1;
        r.expect_done();
        out.cursors[id] = entry;  // last writer wins
      } else if (out.versioned) {
        ++out.skipped_records;  // some v1.x record type we don't know
        continue;
      } else {
        ++out.corrupt_frames;  // headerless file: unknown type is corruption
        continue;
      }
      ++out.records;
    } catch (const UnsupportedVersion&) {
      throw;  // deliberate incompatibility, not corruption
    } catch (const DecodeError&) {
      ++out.corrupt_frames;
    }
  }
  out.corrupt_frames += cursor.corrupt_frames();
  return out;
}

}  // namespace rcm::wire
