#include "wire/buffer.hpp"

#include <cstring>

namespace rcm::wire {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::string(std::string_view s) {
  varint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Writer::raw(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

std::uint8_t Reader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    const std::uint8_t byte = bytes_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
  }
  throw DecodeError("varint longer than 64 bits");
}

std::string Reader::string(std::size_t max_len) {
  const std::uint64_t len = varint();
  if (len > max_len) throw DecodeError("string length exceeds limit");
  need(static_cast<std::size_t>(len));
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

}  // namespace rcm::wire
