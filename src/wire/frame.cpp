#include "wire/frame.hpp"

#include <array>

namespace rcm::wire {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : bytes) c = crc_table()[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  Writer w;
  w.u8(kFrameMagic0);
  w.u8(kFrameMagic1);
  w.varint(payload.size());
  w.raw(payload);
  w.u32(crc32(payload));
  return w.take();
}

void FrameCursor::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameCursor::next() {
  while (true) {
    compact();
    const std::size_t available = buffer_.size() - start_;
    if (available < 2) return std::nullopt;
    if (buffer_[start_] != kFrameMagic0 ||
        buffer_[start_ + 1] != kFrameMagic1) {
      ++corrupt_;
      resync(start_ + 1);
      continue;
    }
    // Parse the varint length manually (it may be incomplete).
    std::size_t pos = start_ + 2;
    std::uint64_t len = 0;
    int shift = 0;
    bool len_done = false;
    while (pos < buffer_.size() && shift < 64) {
      const std::uint8_t byte = buffer_[pos++];
      len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      shift += 7;
      if (!(byte & 0x80)) {
        len_done = true;
        break;
      }
    }
    if (!len_done) {
      if (shift >= 64) {  // malformed length: skip this magic
        ++corrupt_;
        resync(start_ + 2);
        continue;
      }
      if (finished_) {  // truncated length at end-of-stream
        ++corrupt_;
        resync(start_ + 2);
        continue;
      }
      return std::nullopt;  // need more bytes
    }
    if (len > kMaxFramePayload) {
      ++corrupt_;
      resync(start_ + 2);
      continue;
    }
    const std::size_t frame_end = pos + static_cast<std::size_t>(len) + 4;
    if (frame_end > buffer_.size()) {
      if (finished_) {
        // The stream is over, so this frame can never complete. Either a
        // torn tail (count and stop) or a corrupted length varint that
        // swallowed following bytes — which may include the magic of a
        // real frame — so resync from inside the bad header.
        ++corrupt_;
        resync(start_ + 2);
        continue;
      }
      return std::nullopt;  // incomplete
    }
    const std::span<const std::uint8_t> payload{buffer_.data() + pos,
                                                static_cast<std::size_t>(len)};
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
      stored |= static_cast<std::uint32_t>(
                    buffer_[pos + static_cast<std::size_t>(len) +
                            static_cast<std::size_t>(i)])
                << (8 * i);
    if (crc32(payload) != stored) {
      ++corrupt_;
      resync(start_ + 2);
      continue;
    }
    std::vector<std::uint8_t> out{payload.begin(), payload.end()};
    start_ = frame_end;
    return out;
  }
}

void FrameCursor::compact() {
  if (start_ > 4096 && start_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
}

void FrameCursor::resync(std::size_t from) {
  for (std::size_t i = from; i + 1 < buffer_.size(); ++i) {
    if (buffer_[i] == kFrameMagic0 && buffer_[i + 1] == kFrameMagic1) {
      start_ = i;
      return;
    }
  }
  start_ = buffer_.size() >= 1 ? buffer_.size() - 1 : 0;
}

}  // namespace rcm::wire
