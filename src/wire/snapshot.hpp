// Evaluator state snapshots: serialize a Condition Evaluator's volatile
// state (history windows + per-variable accepted-seqno watermarks) so a
// replica can warm-restart after a crash instead of waiting for its
// history windows to refill.
//
// The snapshot does NOT include the condition itself — conditions are
// code/configuration, not state — so restore must target an evaluator
// built for the same condition (same variable set and degrees; this is
// validated and a DecodeError is thrown on mismatch).
#pragma once

#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "wire/buffer.hpp"

namespace rcm::wire {

/// Serializes the evaluator's volatile state.
[[nodiscard]] std::vector<std::uint8_t> encode_evaluator_state(
    const ConditionEvaluator& ce);

/// Restores a snapshot into `ce`. Throws DecodeError on malformed bytes
/// or if the snapshot's variable set / degrees do not match the
/// evaluator's condition.
void decode_evaluator_state(std::span<const std::uint8_t> bytes,
                            ConditionEvaluator& ce);

}  // namespace rcm::wire
