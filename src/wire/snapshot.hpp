// Evaluator state snapshots: serialize a Condition Evaluator's volatile
// state (history windows + per-variable accepted-seqno watermarks) so a
// replica can warm-restart after a crash instead of waiting for its
// history windows to refill.
//
// The snapshot does NOT include the condition itself — conditions are
// code/configuration, not state — so restore must target an evaluator
// built for the same condition (same variable set and degrees; this is
// validated and a DecodeError is thrown on mismatch).
//
// Versioning (docs/SERVICE.md, "Format versioning & rolling upgrades"):
//
//   v1 := 's' | body                      (headerless; written by pre-
//                                          versioning binaries)
//   v2 := 'S' | major:u8 | minor:u8 | body | extension section
//
// The encoder writes v2. The decoder accepts both: v1 bytes restore
// exactly as before, v2 bytes may carry unknown trailing extensions
// (skipped), and a major outside [1, 2] raises UnsupportedVersion so
// callers can tell an incompatible file from a corrupt one.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "wire/buffer.hpp"
#include "wire/version.hpp"

namespace rcm::wire {

/// Version written by encode_evaluator_state.
inline constexpr VersionHeader kSnapshotVersion{2, 0};
/// Major range decode_evaluator_state accepts (1 = legacy 's' tag).
inline constexpr std::uint8_t kSnapshotMinMajor = 1;
inline constexpr std::uint8_t kSnapshotMaxMajor = 2;

/// Serializes the evaluator's volatile state (current version).
[[nodiscard]] std::vector<std::uint8_t> encode_evaluator_state(
    const ConditionEvaluator& ce);

/// Restores a snapshot into `ce`. Accepts v1 and v2 bytes; skips unknown
/// v2 extensions. Throws UnsupportedVersion on a major outside the
/// supported range, DecodeError on malformed bytes or if the snapshot's
/// variable set / degrees do not match the evaluator's condition. `ce`
/// is only mutated after the whole input validated.
void decode_evaluator_state(std::span<const std::uint8_t> bytes,
                            ConditionEvaluator& ce);

namespace detail {

/// A parsed-but-not-applied snapshot body, shared by the v1 and v2
/// codecs (and the legacy writer in wire/legacy.hpp).
struct SnapshotBody {
  HistorySet histories;
  std::map<VarId, SeqNo> last_seen;
};

void encode_snapshot_body(Writer& w, const ConditionEvaluator& ce);
[[nodiscard]] SnapshotBody decode_snapshot_body(Reader& r,
                                                const ConditionEvaluator& ce);

}  // namespace detail

}  // namespace rcm::wire
