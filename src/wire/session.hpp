// Subscriber-session wire protocol + durable cursor-file format.
//
// The alert fan-out edge used to be a dumb TCP sink: a subscriber that
// dropped or stalled silently lost alerts, betraying the AD's
// completeness guarantees at the last hop. Sessions fix that with
// BDR-replication-slot semantics: the service appends every AD-accepted
// alert to its durable alert log (store/file_log.hpp, format 'A'), keeps
// a durable per-session cursor into it, and a reconnecting subscriber
// presents its session id + last-received index to get exact, gap-free
// replay before rejoining the live stream.
//
// Handshake (all messages are CRC frames, wire/frame.hpp):
//
//   client → server, first frame after connect:
//     hello   := 'H' | major | minor | string(session_id)
//                | u8(has_from) | varint(from)        (when has_from = 1)
//                | extension section
//   server → client, exactly one reply per hello:
//     welcome := 'W' | major | minor | u8(status)
//                | varint(start_index) | varint(log_end)
//                | varint(lost_from) | varint(lost_to) (status=kTruncated)
//                | extension section
//
// `from` is the first log index the subscriber wants (last received + 1);
// absent `from` means "resume from the server's durable cursor" (or the
// live tail, for a brand-new session id). Welcome statuses:
//
//   kOk        — replay starts exactly at `from` (or the resolved cursor);
//   kTruncated — the session was evicted and the log no longer retains
//                [lost_from, lost_to); replay resumes at start_index.
//                Never silent: the lost range is named, typed, and the
//                caller decides whether a gap is tolerable;
//   kBadCursor — `from` was beyond log_end; the session resumes live at
//                log_end (a cursor from the future names nothing real).
//
// After the welcome, the server streams indexed records and the client
// may send cumulative acks at any time:
//
//   alert record := 'A' | varint(index) | wire-encoded alert
//   evicted note := 'E' | varint(next_index) | varint(lag)   (then close)
//   ack          := 'K' | varint(upto)      (client → server, cumulative)
//
// Legacy compatibility: a subscriber that connects and sends nothing
// gets the pre-session live stream — plain framed alerts, byte-identical
// to the cursorless protocol (alert frames start with 'a', so a session
// client can always tell live-legacy frames from session records).
//
// Cursor file ("alongside the log", PR 7 v-header conventions): a stream
// of CRC-framed records, torn-tail tolerant, duplicate records resolved
// last-writer-wins:
//
//   record := frame( type:u8 | body )
//   type 'V': body = format_id 'c' | major | minor | extension section
//   type 'C': body = string(session_id) | varint(acked) | u8(evicted)
//
// A future-major header throws wire::UnsupportedVersion (typed), never
// silent misreads; unknown record types in a versioned file are skipped.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/alert.hpp"
#include "wire/codec.hpp"
#include "wire/version.hpp"

namespace rcm::wire {

/// Session protocol version spoken by this binary.
inline constexpr VersionHeader kSessionVersion{1, 0};
inline constexpr std::uint8_t kSessionMinMajor = 1;
inline constexpr std::uint8_t kSessionMaxMajor = 1;

/// Record/message type tags (first payload byte of each frame).
inline constexpr std::uint8_t kSessionHelloTag = 0x48;    // 'H'
inline constexpr std::uint8_t kSessionWelcomeTag = 0x57;  // 'W'
inline constexpr std::uint8_t kSessionAlertTag = 0x41;    // 'A'
inline constexpr std::uint8_t kSessionAckTag = 0x4b;      // 'K'
inline constexpr std::uint8_t kSessionEvictedTag = 0x45;  // 'E'

inline constexpr std::size_t kMaxSessionIdLen = 128;

/// Cursor-file format id carried inside its 'V' header record.
inline constexpr std::uint8_t kCursorFormatId = 0x63;  // 'c'
inline constexpr VersionHeader kCursorFormatVersion{1, 0};
inline constexpr std::uint8_t kCursorMinMajor = 1;
inline constexpr std::uint8_t kCursorMaxMajor = 1;

// ---- handshake ---------------------------------------------------------

/// Client hello: session identity plus the first log index wanted.
struct SessionHello {
  VersionHeader version = kSessionVersion;
  std::string session_id;
  /// First index the subscriber wants (last received + 1). Absent =
  /// resume from the server's durable cursor (live tail for new ids).
  std::optional<std::uint64_t> from;
};

enum class SessionWelcomeStatus : std::uint8_t {
  kOk = 0,
  kTruncated = 1,  ///< lost [lost_from, lost_to); resuming at start_index
  kBadCursor = 2,  ///< `from` was beyond log_end; resuming live
};

/// Server reply to a hello.
struct SessionWelcome {
  VersionHeader version = kSessionVersion;
  SessionWelcomeStatus status = SessionWelcomeStatus::kOk;
  std::uint64_t start_index = 0;  ///< first index that will be streamed
  std::uint64_t log_end = 0;      ///< next index the log will assign
  std::uint64_t lost_from = 0;    ///< kTruncated only
  std::uint64_t lost_to = 0;      ///< kTruncated only (exclusive)
};

[[nodiscard]] std::vector<std::uint8_t> encode_session_hello(
    const SessionHello& hello);
/// Throws UnsupportedVersion on a future major, DecodeError otherwise.
[[nodiscard]] SessionHello decode_session_hello(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_session_welcome(
    const SessionWelcome& welcome);
[[nodiscard]] SessionWelcome decode_session_welcome(
    std::span<const std::uint8_t> payload);

// ---- stream records ----------------------------------------------------

/// One record of the post-welcome server stream, as a client decodes it.
struct SessionRecord {
  enum class Kind : std::uint8_t { kAlert, kEvicted };
  Kind kind = Kind::kAlert;
  std::uint64_t index = 0;  ///< kAlert: log index; kEvicted: next_index
  DecodedAlert alert;       ///< kAlert only
  std::uint64_t lag = 0;    ///< kEvicted only
};

/// `alert_bytes` is a wire-encoded alert (wire::encode_alert output).
[[nodiscard]] std::vector<std::uint8_t> encode_session_alert(
    std::uint64_t index, std::span<const std::uint8_t> alert_bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_session_evicted(
    std::uint64_t next_index, std::uint64_t lag);
/// Decodes either stream record; throws DecodeError on malformed input
/// or an unknown tag.
[[nodiscard]] SessionRecord decode_session_record(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_session_ack(
    std::uint64_t upto);
/// Returns the cumulative `upto` index; throws DecodeError otherwise.
[[nodiscard]] std::uint64_t decode_session_ack(
    std::span<const std::uint8_t> payload);

// ---- cursor file -------------------------------------------------------

/// Durable per-session state, one record per write, last-writer-wins.
struct CursorEntry {
  std::uint64_t acked = 0;  ///< entries [0, acked) confirmed processed
  bool evicted = false;

  friend bool operator==(const CursorEntry&, const CursorEntry&) = default;
};

/// Builds the (unframed) payload of the cursor file's 'V' header record.
[[nodiscard]] std::vector<std::uint8_t> encode_cursor_file_header();
/// Builds one (unframed) 'C' cursor record payload.
[[nodiscard]] std::vector<std::uint8_t> encode_cursor_record(
    const std::string& session_id, const CursorEntry& entry);

/// Result of scanning a cursor file image.
struct RecoveredCursors {
  std::map<std::string, CursorEntry> cursors;  ///< last writer wins
  std::size_t records = 0;          ///< applied cursor records
  std::size_t corrupt_frames = 0;   ///< CRC failures / torn tail frames
  std::size_t skipped_records = 0;  ///< unknown record types (versioned)
  VersionHeader version{1, 0};
  bool versioned = false;
};

/// Replays a cursor file image: torn tails and CRC failures are counted,
/// duplicate session records resolve last-writer-wins. Throws
/// UnsupportedVersion only on a future-major header record.
[[nodiscard]] RecoveredCursors recover_cursor_bytes(
    std::span<const std::uint8_t> bytes);

}  // namespace rcm::wire
