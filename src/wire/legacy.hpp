// Frozen v1 codecs for mixed-version testing.
//
// Two jobs, both about the version BOUNDARY rather than the current
// format:
//
//   * Writers emit byte-exact v1 encodings — what a pre-versioning
//     binary wrote to disk. The restarting harness (tests/restarting/)
//     and `rcm_swarm --upgrade-fuzz` use them to manufacture v1 durable
//     state that the current binary must recover.
//   * Readers simulate a pre-versioning binary decoding bytes: strict
//     v1-only parsers that reject anything newer with DecodeError. The
//     forward-compat tests use them to prove a v(N) reader fails CLEANLY
//     (typed error, no crash, no misparse) on v(N+1) output.
//
// These are deliberately independent re-implementations of the v1 byte
// layout, pinned by the golden corpus under tests/data/v1/ — if the
// current codecs drift, the corpus catches it; if these drift, the
// corpus catches that too.
#pragma once

#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "core/types.hpp"
#include "wire/buffer.hpp"

namespace rcm::wire::legacy {

/// Byte-exact v1 evaluator snapshot ('s' tag, no header, no extensions).
[[nodiscard]] std::vector<std::uint8_t> encode_evaluator_state_v1(
    const ConditionEvaluator& ce);

/// Simulated v1 reader: restores a v1 snapshot into `ce`, rejecting v2+
/// bytes ('S' tag) with DecodeError exactly as the old binary did.
void decode_evaluator_state_v1(std::span<const std::uint8_t> bytes,
                               ConditionEvaluator& ce);

/// Byte-exact v1 WAL/journal file image: one CRC frame per update, no
/// header record (pre-versioning files start directly with update
/// frames).
[[nodiscard]] std::vector<std::uint8_t> encode_update_log_v1(
    std::span<const Update> updates);

}  // namespace rcm::wire::legacy
