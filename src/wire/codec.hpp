// Message codec for the monitoring protocol.
//
// Two message types cross the network (paper §2): data updates on the
// front links and alerts on the back links. Updates always encode in
// full — they ARE the data. Alerts support the three fidelity levels §2
// identifies:
//
//   kFullHistories — every history update with its value (what the
//                    conceptual model sends; required if the AD
//                    re-evaluates or archives alerts),
//   kSeqnosOnly    — history sequence numbers without values (all the
//                    AD algorithms AD-1..AD-6 need at most this),
//   kChecksumOnly  — a 64-bit digest of the histories (sufficient for
//                    AD-1's pure equality test).
//
// Decoding yields a DecodedAlert that tags which fidelity arrived; the
// threaded runtime uses kSeqnosOnly... encodings are also compared in
// bench/ablation_wire.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/alert.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"
#include "wire/buffer.hpp"

namespace rcm::wire {

/// Alert encoding fidelity (see file comment).
enum class AlertEncoding : std::uint8_t {
  kFullHistories = 0,
  kSeqnosOnly = 1,
  kChecksumOnly = 2,
};

/// Encodes one data update.
[[nodiscard]] std::vector<std::uint8_t> encode_update(const Update& u);

/// Encodes one data update carrying a trace context as a tagged
/// extension. A zero trace id encodes byte-identically to the plain
/// form, and decoders that predate extensions skip the tag unharmed
/// (decode_update tolerates any trailing `tag | varint len | bytes`
/// extension after the value).
[[nodiscard]] std::vector<std::uint8_t> encode_update(
    const Update& u, const obs::trace::TraceContext& ctx);

/// Decodes one data update, skipping any tagged extensions; throws
/// DecodeError on malformed input.
[[nodiscard]] Update decode_update(std::span<const std::uint8_t> bytes);

/// Result of decoding an update together with its extensions.
struct UpdateMessage {
  Update update;
  /// Propagated trace context; zero ids when the sender attached none.
  obs::trace::TraceContext trace;
};

/// Decodes one data update plus its trace-context extension (if
/// present); throws DecodeError on malformed input.
[[nodiscard]] UpdateMessage decode_update_message(
    std::span<const std::uint8_t> bytes);

/// Encodes one alert at the chosen fidelity.
[[nodiscard]] std::vector<std::uint8_t> encode_alert(const Alert& a,
                                                     AlertEncoding encoding);

/// Result of decoding an alert.
struct DecodedAlert {
  AlertEncoding encoding = AlertEncoding::kFullHistories;
  /// Reconstructed alert. For kSeqnosOnly the update values are NaN
  /// (sequence numbers are exact); for kChecksumOnly histories are empty.
  Alert alert;
  /// The digest, present for kChecksumOnly.
  std::uint64_t checksum = 0;
};

/// Decodes one alert; throws DecodeError on malformed input.
[[nodiscard]] DecodedAlert decode_alert(std::span<const std::uint8_t> bytes);

}  // namespace rcm::wire
