#include "wire/codec.hpp"

#include <limits>

namespace rcm::wire {
namespace {

// Message type tags so a stray update can never parse as an alert.
constexpr std::uint8_t kUpdateTag = 0x75;  // 'u'
constexpr std::uint8_t kAlertTag = 0x61;   // 'a'

constexpr std::size_t kMaxVariables = 1024;
constexpr std::size_t kMaxWindow = 4096;

// Update-message extensions: after the fixed fields, any number of
// `tag (u8) | varint payload-len | payload` blocks. Decoders skip tags
// they don't know, which is what makes the trace context deployable
// next to old binaries.
constexpr std::uint8_t kTraceExtTag = 0x54;  // 'T'
constexpr std::size_t kMaxExtensionLen = 256;

UpdateMessage decode_update_impl(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kUpdateTag) throw DecodeError("not an update message");
  UpdateMessage msg;
  msg.update.var = static_cast<VarId>(r.varint());
  msg.update.seqno = r.svarint();
  msg.update.value = r.f64();
  while (!r.done()) {
    const std::uint8_t ext_tag = r.u8();
    const std::uint64_t len = r.varint();
    if (len > kMaxExtensionLen) throw DecodeError("oversized update extension");
    const auto payload = r.bytes(static_cast<std::size_t>(len));
    if (ext_tag == kTraceExtTag) {
      Reader ext{payload};
      msg.trace.trace_id = ext.varint();
      msg.trace.span_id = ext.varint();
      ext.expect_done();
    }
    // Unknown tags: skipped. Truncated extensions still throw (r.bytes).
  }
  return msg;
}

}  // namespace

std::vector<std::uint8_t> encode_update(const Update& u) {
  Writer w;
  w.u8(kUpdateTag);
  w.varint(u.var);
  w.svarint(u.seqno);
  w.f64(u.value);
  return w.take();
}

std::vector<std::uint8_t> encode_update(const Update& u,
                                        const obs::trace::TraceContext& ctx) {
  Writer w;
  w.u8(kUpdateTag);
  w.varint(u.var);
  w.svarint(u.seqno);
  w.f64(u.value);
  if (ctx.trace_id != 0) {
    Writer ext;
    ext.varint(ctx.trace_id);
    ext.varint(ctx.span_id);
    w.u8(kTraceExtTag);
    w.varint(ext.size());
    w.raw(ext.bytes());
  }
  return w.take();
}

Update decode_update(std::span<const std::uint8_t> bytes) {
  return decode_update_impl(bytes).update;
}

UpdateMessage decode_update_message(std::span<const std::uint8_t> bytes) {
  return decode_update_impl(bytes);
}

std::vector<std::uint8_t> encode_alert(const Alert& a,
                                       AlertEncoding encoding) {
  Writer w;
  w.u8(kAlertTag);
  w.u8(static_cast<std::uint8_t>(encoding));
  w.string(a.cond);
  switch (encoding) {
    case AlertEncoding::kChecksumOnly:
      w.u64(a.checksum());
      break;
    case AlertEncoding::kSeqnosOnly:
    case AlertEncoding::kFullHistories:
      w.varint(a.histories.size());
      for (const auto& [var, window] : a.histories) {
        w.varint(var);
        w.varint(window.size());
        // Windows are ascending; delta-encode the seqnos.
        SeqNo prev = 0;
        for (const Update& u : window) {
          w.svarint(u.seqno - prev);
          prev = u.seqno;
          if (encoding == AlertEncoding::kFullHistories) w.f64(u.value);
        }
      }
      break;
  }
  return w.take();
}

DecodedAlert decode_alert(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kAlertTag) throw DecodeError("not an alert message");
  const auto raw_encoding = r.u8();
  if (raw_encoding > static_cast<std::uint8_t>(AlertEncoding::kChecksumOnly))
    throw DecodeError("unknown alert encoding");
  DecodedAlert out;
  out.encoding = static_cast<AlertEncoding>(raw_encoding);
  out.alert.cond = r.string();
  switch (out.encoding) {
    case AlertEncoding::kChecksumOnly:
      out.checksum = r.u64();
      break;
    case AlertEncoding::kSeqnosOnly:
    case AlertEncoding::kFullHistories: {
      const std::uint64_t vars = r.varint();
      if (vars > kMaxVariables) throw DecodeError("too many variables");
      for (std::uint64_t i = 0; i < vars; ++i) {
        const VarId var = static_cast<VarId>(r.varint());
        const std::uint64_t count = r.varint();
        if (count > kMaxWindow) throw DecodeError("history window too long");
        std::vector<Update> window;
        window.reserve(static_cast<std::size_t>(count));
        SeqNo prev = 0;
        for (std::uint64_t j = 0; j < count; ++j) {
          Update u;
          u.var = var;
          u.seqno = prev + r.svarint();
          prev = u.seqno;
          u.value = out.encoding == AlertEncoding::kFullHistories
                        ? r.f64()
                        : std::numeric_limits<double>::quiet_NaN();
          window.push_back(u);
        }
        if (!out.alert.histories.emplace(var, std::move(window)).second)
          throw DecodeError("duplicate variable in alert");
      }
      break;
    }
  }
  r.expect_done();
  return out;
}

}  // namespace rcm::wire
