// Wire formats for the sharding subsystem (docs/SERVICE.md, "Sharding &
// resharding"): the shard map distributed to feeders/clients, the
// handoff packet that moves a variable's durable state between shards,
// and the skippable origin extension a shard attaches when forwarding an
// accepted update to the merge tier.
//
// Both container formats follow the house rules from wire/version.hpp:
// a one-byte format tag, a major/minor header (majors gate, minors add
// extension tags), a fixed body, and a trailing skippable extension
// section. Future majors are rejected with typed UnsupportedVersion.
//
//   shard map  := 'M' | major | minor | varint(epoch) | varint(nshards)
//                 | nshards * ( varint(shard_id) | varint(vnodes)
//                               | varint(nports) | nports * varint(port) )
//                 | extension section
//
//   handoff    := 'X' | major | minor | varint(epoch) | varint(from)
//                 | varint(to) | varint(replica) | varint(nvars)
//                 | nvars * ( varint(var) | svarint(watermark)
//                             | varint(nwindow)
//                             | nwindow * ( svarint(seqno) | f64(value) ) )
//                 | extension section
//
// The map's epoch is a total order on cluster layouts: a router holding
// epoch e discards any map with a smaller epoch, and the merge tier uses
// the per-variable watermarks it already keeps (paper's out-of-order
// discard) to dedup forwards that arrive from both the old and the new
// owner around a reshard.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "wire/version.hpp"

namespace rcm::wire {

inline constexpr VersionHeader kShardMapVersion{1, 0};
inline constexpr std::uint8_t kShardMapMinMajor = 1;
inline constexpr std::uint8_t kShardMapMaxMajor = 1;

inline constexpr VersionHeader kHandoffVersion{1, 0};
inline constexpr std::uint8_t kHandoffMinMajor = 1;
inline constexpr std::uint8_t kHandoffMaxMajor = 1;

/// One shard's entry in the map: its ring identity plus the UDP replica
/// ports updates for its owned variables should be sent to.
struct ShardMapEntry {
  std::uint32_t shard_id = 0;
  std::uint32_t vnodes = 0;
  std::vector<std::uint16_t> replica_ports;

  friend bool operator==(const ShardMapEntry&, const ShardMapEntry&) = default;
};

/// The versioned cluster layout. `epoch` increments on every reshard;
/// entries are ascending by shard_id.
struct ShardMap {
  std::uint64_t epoch = 0;
  std::vector<ShardMapEntry> shards;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_shard_map(const ShardMap& m);
[[nodiscard]] ShardMap decode_shard_map(std::span<const std::uint8_t> bytes);

/// One moved variable inside a handoff packet: the accepted-seqno
/// watermark plus the history window (oldest first) the receiving shard
/// replays to reconstruct the departing CE's state exactly.
struct HandoffEntry {
  VarId var = 0;
  SeqNo watermark = kNoSeqNo;
  std::vector<Update> window;

  friend bool operator==(const HandoffEntry&, const HandoffEntry&) = default;
};

/// Durable state for a key range moving from shard `from` to shard `to`
/// as part of the reshard that produced `epoch`. Applying a handoff is a
/// targeted crash-recovery: the receiver rewrites its WAL with the
/// windows and recovers through the normal checkpoint+WAL path.
struct HandoffPacket {
  std::uint64_t epoch = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t replica = 0;  ///< shards hand off replica r → replica r
  std::vector<HandoffEntry> entries;

  friend bool operator==(const HandoffPacket&, const HandoffPacket&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_handoff(const HandoffPacket& p);
[[nodiscard]] HandoffPacket decode_handoff(std::span<const std::uint8_t> bytes);

/// Update-message extension tag carrying the forwarding shard's identity
/// (varint shard_id | varint epoch). Attached by shards when relaying an
/// accepted update to the merge tier; skipped by every decoder that does
/// not care (wire/codec.hpp's trailing-extension rule).
inline constexpr std::uint8_t kShardOriginExtTag = 0x5a;  // 'Z'

/// Encodes `u` (with `ctx` when tracing) plus the shard-origin extension.
/// Decoders see a normal update message; decode_shard_origin recovers the
/// origin when present.
[[nodiscard]] std::vector<std::uint8_t> encode_update_from_shard(
    const Update& u, std::uint32_t shard_id, std::uint64_t epoch);

/// The origin of a forwarded update, when the message carried one.
struct ShardOrigin {
  std::uint32_t shard_id = 0;
  std::uint64_t epoch = 0;
};

/// Extracts the shard-origin extension from an encoded update message.
/// Returns false when the message has none (a plain feeder update).
[[nodiscard]] bool decode_shard_origin(std::span<const std::uint8_t> bytes,
                                       ShardOrigin& out);

}  // namespace rcm::wire
