// Stream framing with integrity checking.
//
// The paper assumes links deliver messages in order and (on the back
// links) without loss; a real deployment gets that from a byte-stream
// transport, which needs message boundaries and corruption detection on
// top. A frame is:
//
//   magic (2 bytes, 0xCE 0x01) | payload length (varint) |
//   payload bytes | CRC-32 of the payload (fixed 4 bytes)
//
// FrameCursor incrementally extracts frames from a byte stream and can
// resynchronize after corruption by scanning for the next magic. A
// corrupted length varint can decode to a plausible length, making a
// truncated stream look like an incomplete frame forever — and the
// corrupted bytes themselves may contain the magic pair of a real frame.
// finish() marks end-of-stream so next() treats such pending frames as
// corrupt and resyncs at any embedded magic instead of stalling; every
// file-recovery path calls it after feeding the whole file.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "wire/buffer.hpp"

namespace rcm::wire {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Wraps a payload in a frame.
[[nodiscard]] std::vector<std::uint8_t> frame(
    std::span<const std::uint8_t> payload);

/// Incremental frame extractor over an append-only byte stream.
class FrameCursor {
 public:
  /// Appends raw bytes received from the transport.
  void feed(std::span<const std::uint8_t> bytes);

  /// Declares the stream complete: no more feed() calls will arrive.
  /// Subsequent next() calls treat an incomplete trailing frame as
  /// corrupt and resync past it (recovering any frame whose magic was
  /// swallowed by a corrupted length varint) instead of waiting.
  void finish() noexcept { finished_ = true; }

  /// Extracts the next complete, CRC-valid frame payload, or nullopt if
  /// more bytes are needed (or, after finish(), if none remain). Corrupt
  /// frames are skipped (counted in corrupt_frames()) by scanning to the
  /// next magic.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] std::size_t corrupt_frames() const noexcept {
    return corrupt_;
  }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - start_;
  }

 private:
  void compact();
  /// Advances start_ to the next possible magic at or after `from`.
  void resync(std::size_t from);

  std::vector<std::uint8_t> buffer_;
  std::size_t start_ = 0;   // first unconsumed byte
  std::size_t corrupt_ = 0;
  bool finished_ = false;
};

inline constexpr std::uint8_t kFrameMagic0 = 0xCE;
inline constexpr std::uint8_t kFrameMagic1 = 0x01;
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

}  // namespace rcm::wire
