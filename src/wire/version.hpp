// Format versioning for durable and on-wire encodings.
//
// Every versioned format carries a two-byte header — major, then minor —
// plus a trailing *extension section* of skippable tagged blocks:
//
//   header    := major:u8 | minor:u8
//   extension := varint(count) | count * (tag:u8 | varint(len) | bytes)
//
// The compatibility contract (docs/SERVICE.md, "Format versioning &
// rolling upgrades"):
//
//   * A reader accepts any minor of a major it knows: minors only ever
//     add extension tags, and unknown tags are skipped by construction.
//   * A reader rejects a major outside its supported range with
//     UnsupportedVersion — a typed error carrying the format name, the
//     version found, and the reader's supported range — so callers can
//     distinguish "incompatible peer/file" from "corrupt bytes".
//
// UnsupportedVersion derives from DecodeError: code that treats any
// decode failure as corruption (torn WAL tails, fuzzing) keeps working,
// while upgrade-aware callers can catch the subclass first.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "wire/buffer.hpp"

namespace rcm::wire {

/// A format version. Majors gate compatibility; minors are informative.
struct VersionHeader {
  std::uint8_t major = 1;
  std::uint8_t minor = 0;

  friend bool operator==(VersionHeader a, VersionHeader b) {
    return a.major == b.major && a.minor == b.minor;
  }
};

/// Typed rejection of a version a reader cannot understand. The message
/// names the format, the version found, and the supported major range.
class UnsupportedVersion : public DecodeError {
 public:
  UnsupportedVersion(std::string format, VersionHeader got,
                     std::uint8_t min_major, std::uint8_t max_major);

  [[nodiscard]] const std::string& format() const noexcept { return format_; }
  [[nodiscard]] VersionHeader got() const noexcept { return got_; }
  [[nodiscard]] std::uint8_t min_major() const noexcept { return min_major_; }
  [[nodiscard]] std::uint8_t max_major() const noexcept { return max_major_; }

 private:
  std::string format_;
  VersionHeader got_;
  std::uint8_t min_major_;
  std::uint8_t max_major_;
};

/// Writes the two-byte version header.
void encode_version(Writer& w, VersionHeader v);

/// Reads a version header and enforces the reader's supported major
/// range [min_major, max_major]. Throws UnsupportedVersion outside it,
/// DecodeError on truncation. Any minor is accepted.
[[nodiscard]] VersionHeader decode_version(Reader& r, const char* format,
                                           std::uint8_t min_major,
                                           std::uint8_t max_major);

/// One tagged extension block.
struct Extension {
  std::uint8_t tag = 0;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::size_t kMaxExtensionEntries = 64;
inline constexpr std::size_t kMaxExtensionPayloadBytes = 4096;

/// Writes an extension section (count followed by tagged blocks).
void encode_extension_section(Writer& w, std::span<const Extension> exts);

/// Reads an extension section, invoking `fn` (when non-null) for each
/// entry. Unknown tags are the caller's business — ignoring an entry in
/// `fn` IS the skip. Returns the entry count. Throws DecodeError on
/// malformed sections or hostile counts/lengths.
std::size_t decode_extension_section(
    Reader& r,
    const std::function<void(std::uint8_t tag,
                             std::span<const std::uint8_t> payload)>& fn);

}  // namespace rcm::wire
