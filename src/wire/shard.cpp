#include "wire/shard.hpp"

#include "wire/codec.hpp"

namespace rcm::wire {

namespace {

constexpr std::uint8_t kShardMapTag = 0x4d;  // 'M'
constexpr std::uint8_t kHandoffTag = 0x58;   // 'X'

// Hostile-input bounds, matching the spirit of codec.cpp's caps.
constexpr std::size_t kMaxShards = 4096;
constexpr std::size_t kMaxPortsPerShard = 1024;
constexpr std::size_t kMaxHandoffVars = 4096;
constexpr std::size_t kMaxHandoffWindow = 4096;

// Mirrors codec.cpp's update-message framing (fixed fields, then
// tag|len|payload extension blocks).
constexpr std::uint8_t kUpdateTag = 0x75;  // 'u'
constexpr std::size_t kMaxUpdateExtensionLen = 256;

}  // namespace

std::vector<std::uint8_t> encode_shard_map(const ShardMap& m) {
  Writer w;
  w.u8(kShardMapTag);
  encode_version(w, kShardMapVersion);
  w.varint(m.epoch);
  w.varint(m.shards.size());
  for (const ShardMapEntry& s : m.shards) {
    w.varint(s.shard_id);
    w.varint(s.vnodes);
    w.varint(s.replica_ports.size());
    for (std::uint16_t port : s.replica_ports) w.varint(port);
  }
  encode_extension_section(w, {});
  return w.take();
}

ShardMap decode_shard_map(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kShardMapTag) throw DecodeError("not a shard map");
  (void)decode_version(r, "shard map", kShardMapMinMajor, kShardMapMaxMajor);
  ShardMap m;
  m.epoch = r.varint();
  const std::uint64_t nshards = r.varint();
  if (nshards > kMaxShards) throw DecodeError("too many shards in map");
  m.shards.reserve(static_cast<std::size_t>(nshards));
  for (std::uint64_t i = 0; i < nshards; ++i) {
    ShardMapEntry s;
    s.shard_id = static_cast<std::uint32_t>(r.varint());
    s.vnodes = static_cast<std::uint32_t>(r.varint());
    const std::uint64_t nports = r.varint();
    if (nports > kMaxPortsPerShard) throw DecodeError("too many shard ports");
    s.replica_ports.reserve(static_cast<std::size_t>(nports));
    for (std::uint64_t j = 0; j < nports; ++j) {
      const std::uint64_t port = r.varint();
      if (port > 0xffff) throw DecodeError("shard port out of range");
      s.replica_ports.push_back(static_cast<std::uint16_t>(port));
    }
    if (i > 0 && m.shards.back().shard_id >= s.shard_id)
      throw DecodeError("shard map entries not ascending");
    m.shards.push_back(std::move(s));
  }
  (void)decode_extension_section(r, nullptr);  // skip unknown tags
  r.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_handoff(const HandoffPacket& p) {
  Writer w;
  w.u8(kHandoffTag);
  encode_version(w, kHandoffVersion);
  w.varint(p.epoch);
  w.varint(p.from);
  w.varint(p.to);
  w.varint(p.replica);
  w.varint(p.entries.size());
  for (const HandoffEntry& e : p.entries) {
    w.varint(e.var);
    w.svarint(e.watermark);
    w.varint(e.window.size());
    for (const Update& u : e.window) {
      w.svarint(u.seqno);
      w.f64(u.value);
    }
  }
  encode_extension_section(w, {});
  return w.take();
}

HandoffPacket decode_handoff(std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u8() != kHandoffTag) throw DecodeError("not a handoff packet");
  (void)decode_version(r, "handoff packet", kHandoffMinMajor,
                       kHandoffMaxMajor);
  HandoffPacket p;
  p.epoch = r.varint();
  p.from = static_cast<std::uint32_t>(r.varint());
  p.to = static_cast<std::uint32_t>(r.varint());
  p.replica = static_cast<std::uint32_t>(r.varint());
  const std::uint64_t nvars = r.varint();
  if (nvars > kMaxHandoffVars) throw DecodeError("too many handoff vars");
  p.entries.reserve(static_cast<std::size_t>(nvars));
  for (std::uint64_t i = 0; i < nvars; ++i) {
    HandoffEntry e;
    e.var = static_cast<VarId>(r.varint());
    e.watermark = r.svarint();
    const std::uint64_t nwindow = r.varint();
    if (nwindow > kMaxHandoffWindow)
      throw DecodeError("handoff window too long");
    e.window.reserve(static_cast<std::size_t>(nwindow));
    for (std::uint64_t j = 0; j < nwindow; ++j) {
      Update u;
      u.var = e.var;
      u.seqno = r.svarint();
      u.value = r.f64();
      if (!e.window.empty() && e.window.back().seqno >= u.seqno)
        throw DecodeError("handoff window not ascending");
      e.window.push_back(u);
    }
    p.entries.push_back(std::move(e));
  }
  (void)decode_extension_section(r, nullptr);  // skip unknown tags
  r.expect_done();
  return p;
}

std::vector<std::uint8_t> encode_update_from_shard(const Update& u,
                                                   std::uint32_t shard_id,
                                                   std::uint64_t epoch) {
  std::vector<std::uint8_t> bytes = encode_update(u);
  Writer ext;
  ext.varint(shard_id);
  ext.varint(epoch);
  Writer tail;
  tail.u8(kShardOriginExtTag);
  tail.varint(ext.size());
  tail.raw(ext.bytes());
  const auto tail_bytes = tail.take();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  return bytes;
}

bool decode_shard_origin(std::span<const std::uint8_t> bytes,
                         ShardOrigin& out) {
  Reader r{bytes};
  if (r.u8() != kUpdateTag) throw DecodeError("not an update message");
  (void)r.varint();  // var
  (void)r.svarint();  // seqno
  (void)r.f64();      // value
  bool found = false;
  while (!r.done()) {
    const std::uint8_t tag = r.u8();
    const std::uint64_t len = r.varint();
    if (len > kMaxUpdateExtensionLen)
      throw DecodeError("oversized update extension");
    const auto payload = r.bytes(static_cast<std::size_t>(len));
    if (tag == kShardOriginExtTag) {
      Reader ext{payload};
      out.shard_id = static_cast<std::uint32_t>(ext.varint());
      out.epoch = ext.varint();
      ext.expect_done();
      found = true;
    }
  }
  return found;
}

}  // namespace rcm::wire
