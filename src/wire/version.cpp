#include "wire/version.hpp"

namespace rcm::wire {
namespace {

std::string describe(const std::string& format, VersionHeader got,
                     std::uint8_t min_major, std::uint8_t max_major) {
  return format + ": unsupported version " + std::to_string(got.major) + "." +
         std::to_string(got.minor) + " (this reader supports majors " +
         std::to_string(min_major) + ".." + std::to_string(max_major) + ")";
}

}  // namespace

UnsupportedVersion::UnsupportedVersion(std::string format, VersionHeader got,
                                       std::uint8_t min_major,
                                       std::uint8_t max_major)
    : DecodeError(describe(format, got, min_major, max_major)),
      format_(std::move(format)),
      got_(got),
      min_major_(min_major),
      max_major_(max_major) {}

void encode_version(Writer& w, VersionHeader v) {
  w.u8(v.major);
  w.u8(v.minor);
}

VersionHeader decode_version(Reader& r, const char* format,
                             std::uint8_t min_major, std::uint8_t max_major) {
  VersionHeader v;
  v.major = r.u8();
  v.minor = r.u8();
  if (v.major < min_major || v.major > max_major)
    throw UnsupportedVersion(format, v, min_major, max_major);
  return v;
}

void encode_extension_section(Writer& w, std::span<const Extension> exts) {
  w.varint(exts.size());
  for (const Extension& e : exts) {
    w.u8(e.tag);
    w.varint(e.payload.size());
    w.raw(e.payload);
  }
}

std::size_t decode_extension_section(
    Reader& r,
    const std::function<void(std::uint8_t tag,
                             std::span<const std::uint8_t> payload)>& fn) {
  const std::uint64_t count = r.varint();
  if (count > kMaxExtensionEntries)
    throw DecodeError("extension section: too many entries");
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t tag = r.u8();
    const std::uint64_t len = r.varint();
    if (len > kMaxExtensionPayloadBytes)
      throw DecodeError("extension section: oversized payload");
    const auto payload = r.bytes(static_cast<std::size_t>(len));
    if (fn) fn(tag, payload);
  }
  return static_cast<std::size_t>(count);
}

}  // namespace rcm::wire
