// Byte-buffer primitives for the wire protocol: a bounds-checked reader
// and an appending writer over contiguous bytes, plus LEB128 varints and
// zigzag transforms for signed values.
//
// The monitoring messages (updates, alerts) are tiny and frequent, so the
// format favors compactness: sequence numbers and counts are varints,
// values are raw IEEE-754 doubles, strings are length-prefixed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rcm::wire {

/// Thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Zigzag-maps a signed 64-bit value to unsigned so small magnitudes
/// (positive or negative) encode as short varints.
[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag().
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Appending byte writer.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);              ///< little-endian fixed 4 bytes
  void u64(std::uint64_t v);              ///< little-endian fixed 8 bytes
  void f64(double v);                     ///< IEEE-754 bits, little-endian
  void varint(std::uint64_t v);           ///< LEB128
  void svarint(std::int64_t v) { varint(zigzag(v)); }
  void string(std::string_view s);        ///< varint length + raw bytes
  void raw(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked byte reader; every method throws DecodeError instead of
/// reading past the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint() { return unzigzag(varint()); }
  /// Reads a varint length then that many bytes. `max_len` guards against
  /// hostile lengths.
  [[nodiscard]] std::string string(std::size_t max_len = 4096);
  /// Consumes the next `n` bytes and returns a view into the input (valid
  /// while the underlying buffer lives).
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  /// Requires that the whole input was consumed; trailing garbage is a
  /// framing bug, not something to ignore.
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated message");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace rcm::wire
