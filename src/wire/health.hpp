// Versioned instance-health document — the unit the cluster health
// aggregator scrapes from every shard and the merge tier over the admin
// protocol (admin `health` command, PR 10).
//
// One InstanceHealth describes one service process-instance: its role in
// the cluster, per-replica liveness + heartbeat ages, windowed ingest/
// WAL/fan-out rates from the time-series sampler, session lag, and a
// typed list of active degradations from the stall watchdog. The
// aggregator merges many of these into the cluster health JSON document;
// the wire form stays compact and versioned so mixed-version clusters
// can exchange it (same contract as every other PR 7 format: majors
// gate, minors add skippable extension tags).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/version.hpp"

namespace rcm::wire {

inline constexpr VersionHeader kHealthVersion{1, 0};
inline constexpr std::uint8_t kHealthMinMajor = 1;
inline constexpr std::uint8_t kHealthMaxMajor = 1;

/// Stable on-wire degradation kinds the stall watchdog and aggregator
/// emit. Append only — values are frozen in the v1 corpus.
enum class DegradationKind : std::uint8_t {
  kReplicaDown = 0,        // replica worker not running
  kHeartbeatMissed = 1,    // worker/session/AD heartbeat older than budget
  kWalFlushSlow = 2,       // WAL append p99 above budget
  kEventLoopStalled = 3,   // session event loop tick overdue
  kSessionLagExceeded = 4, // a session's replay lag above budget
  kAdStalled = 5,          // AD thread has queued alerts but no heartbeat
  kUnreachable = 6,        // aggregator could not scrape this instance
};

/// Names the enum value for documents and logs ("replica_down", ...).
[[nodiscard]] const char* degradation_kind_name(DegradationKind k) noexcept;

/// One active degradation: a typed kind, a bounded human-readable
/// detail, and a kind-specific magnitude (heartbeat age ns, lag in
/// alerts, latency in ns — whatever makes the kind quantitative).
struct Degradation {
  DegradationKind kind = DegradationKind::kReplicaDown;
  std::string detail;
  std::uint64_t value = 0;

  friend bool operator==(const Degradation&, const Degradation&) = default;
};

/// Per-replica liveness as seen by the instance's own monitor.
struct ReplicaHealth {
  std::uint32_t replica = 0;
  bool up = false;
  std::uint64_t incarnations = 0;
  std::uint64_t heartbeat_age_ns = 0;
  std::uint64_t accepted = 0;
  std::uint64_t wal_records = 0;

  friend bool operator==(const ReplicaHealth&, const ReplicaHealth&) = default;
};

/// One named windowed rate (events/sec over 10s / 1m / 5m) from the
/// time-series sampler.
struct RateSample {
  std::string name;
  double rate_10s = 0.0;
  double rate_1m = 0.0;
  double rate_5m = 0.0;

  friend bool operator==(const RateSample&, const RateSample&) = default;
};

/// The instance's place in the cluster topology.
enum class InstanceRole : std::uint8_t {
  kStandalone = 0,  // unsharded service
  kShard = 1,
  kMerge = 2,
};

struct InstanceHealth {
  InstanceRole role = InstanceRole::kStandalone;
  std::uint32_t shard_id = 0;  // meaningful for kShard/kMerge
  std::uint64_t epoch = 0;     // shard-map epoch (0 when unsharded)
  bool healthy = true;
  std::uint64_t uptime_ns = 0;
  std::uint64_t sessions = 0;
  std::uint64_t max_session_lag = 0;
  std::uint64_t alert_queue_depth = 0;
  std::vector<ReplicaHealth> replicas;
  std::vector<RateSample> rates;
  std::vector<Degradation> degradations;

  friend bool operator==(const InstanceHealth&,
                         const InstanceHealth&) = default;
};

/// Tag byte | version header | fields | extension section.
[[nodiscard]] std::vector<std::uint8_t> encode_instance_health(
    const InstanceHealth& h);

/// Throws UnsupportedVersion for unknown majors, DecodeError on corrupt
/// or hostile input (oversized lists, trailing bytes).
[[nodiscard]] InstanceHealth decode_instance_health(
    std::span<const std::uint8_t> bytes);

}  // namespace rcm::wire
