#include "wire/legacy.hpp"

#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/snapshot.hpp"

namespace rcm::wire::legacy {
namespace {

constexpr std::uint8_t kSnapshotTagV1 = 0x73;  // 's'

}  // namespace

std::vector<std::uint8_t> encode_evaluator_state_v1(
    const ConditionEvaluator& ce) {
  Writer w;
  w.u8(kSnapshotTagV1);
  detail::encode_snapshot_body(w, ce);
  return w.take();
}

void decode_evaluator_state_v1(std::span<const std::uint8_t> bytes,
                               ConditionEvaluator& ce) {
  Reader r{bytes};
  if (r.u8() != kSnapshotTagV1) throw DecodeError("not an evaluator snapshot");
  detail::SnapshotBody body = detail::decode_snapshot_body(r, ce);
  r.expect_done();
  ce.restore_state(std::move(body.histories), std::move(body.last_seen));
}

std::vector<std::uint8_t> encode_update_log_v1(
    std::span<const Update> updates) {
  std::vector<std::uint8_t> out;
  for (const Update& u : updates) {
    const auto framed = frame(encode_update(u));
    out.insert(out.end(), framed.begin(), framed.end());
  }
  return out;
}

}  // namespace rcm::wire::legacy
