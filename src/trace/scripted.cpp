#include "trace/scripted.hpp"

namespace rcm::trace {

Trace scripted(VarId var,
               const std::vector<std::pair<SeqNo, double>>& points) {
  Trace out;
  out.reserve(points.size());
  double time = 0.0;
  for (const auto& [seqno, value] : points) {
    time += 1.0;
    out.push_back(TimedUpdate{time, Update{var, seqno, value}});
  }
  return out;
}

Trace example1_updates(VarId x) {
  return scripted(x, {{1, 2900.0}, {2, 3100.0}, {3, 3200.0}});
}

Trace intro_stock_updates(VarId s) {
  return scripted(s, {{1, 100.0}, {2, 50.0}, {3, 52.0}});
}

Trace theorem3_u1(VarId x) {
  return scripted(x, {{1, 1000.0}, {2, 1500.0}});
}

Trace theorem3_u2(VarId x) {
  return scripted(x, {{3, 2000.0}, {4, 2500.0}});
}

Trace theorem4_updates(VarId x) {
  return scripted(x, {{1, 400.0}, {2, 700.0}, {3, 720.0}});
}

Trace theorem10_ux(VarId x) {
  return scripted(x, {{1, 1000.0}, {2, 1200.0}});
}

Trace theorem10_uy(VarId y) {
  return scripted(y, {{1, 1050.0}, {2, 1150.0}});
}

}  // namespace rcm::trace
