// Trace file I/O: save generated workloads and replay them later, so
// experiments are shareable and re-runnable without the generator seeds.
//
// Text format: plain text, one update per line,
//
//   # comment lines and blank lines are ignored
//   <time> <var> <seqno> <value>
//
// e.g. "1.25 0 7 3000.5". Times must be strictly increasing per file;
// seqnos strictly increasing per variable (parse_trace enforces both —
// they are the invariants every consumer in this library relies on).
//
// A compact binary encoding (wire::Writer/Reader based) is also provided
// for embedding traces inside other records — the swarm counterexample
// records carry the full DM traces of a failing run this way. The binary
// decoder enforces the same two invariants as the text parser.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <stdexcept>
#include <string_view>

#include "trace/generators.hpp"

namespace rcm::wire {
class Writer;
class Reader;
}  // namespace rcm::wire

namespace rcm::trace {

/// Thrown on malformed trace text; `line()` is 1-based.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Renders a trace in the text format.
void write_trace(std::ostream& os, const Trace& trace);

/// Parses the text format; throws TraceParseError on malformed input or
/// violated invariants.
[[nodiscard]] Trace parse_trace(std::string_view text);

/// File conveniences. save_trace overwrites; load_trace throws
/// std::runtime_error if the file cannot be read.
void save_trace(const std::filesystem::path& path, const Trace& trace);
[[nodiscard]] Trace load_trace(const std::filesystem::path& path);

/// Appends the binary encoding of `trace` to `w`: count, then per update
/// (time f64, var varint, seqno svarint, value f64).
void encode_trace(wire::Writer& w, const Trace& trace);

/// Reads one binary-encoded trace. Throws wire::DecodeError on truncated
/// or malformed bytes, on more than `max_updates` entries, and on
/// violations of the trace invariants (strictly increasing times;
/// strictly increasing seqnos per variable).
[[nodiscard]] Trace decode_trace(wire::Reader& r,
                                 std::size_t max_updates = 1u << 20);

}  // namespace rcm::trace
