#include "trace/trace_io.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "wire/buffer.hpp"

namespace rcm::trace {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# rcm trace: <time> <var> <seqno> <value>\n";
  os.precision(17);  // doubles must round-trip exactly
  for (const TimedUpdate& tu : trace) {
    os << tu.time << ' ' << tu.update.var << ' ' << tu.update.seqno << ' '
       << tu.update.value << '\n';
  }
}

Trace parse_trace(std::string_view text) {
  Trace out;
  std::map<VarId, SeqNo> last_seqno;
  double last_time = -1.0;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Skip blanks and comments.
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size() || line[i] == '#') continue;

    std::istringstream fields{std::string(line)};
    double time = 0.0, value = 0.0;
    long long var = 0, seqno = 0;
    if (!(fields >> time >> var >> seqno >> value))
      throw TraceParseError("expected '<time> <var> <seqno> <value>'",
                            line_no);
    std::string trailing;
    if (fields >> trailing)
      throw TraceParseError("trailing fields after value", line_no);
    if (var < 0 || var > static_cast<long long>(UINT32_MAX))
      throw TraceParseError("variable id out of range", line_no);
    if (time <= last_time)
      throw TraceParseError("times must be strictly increasing", line_no);
    const VarId v = static_cast<VarId>(var);
    auto it = last_seqno.find(v);
    if (it != last_seqno.end() && seqno <= it->second)
      throw TraceParseError(
          "sequence numbers must be strictly increasing per variable",
          line_no);
    last_seqno[v] = seqno;
    last_time = time;
    out.push_back(TimedUpdate{time, Update{v, seqno, value}});
  }
  return out;
}

void save_trace(const std::filesystem::path& path, const Trace& trace) {
  std::ofstream out{path};
  if (!out.is_open())
    throw std::runtime_error("save_trace: cannot open " + path.string());
  write_trace(out, trace);
  if (!out.good())
    throw std::runtime_error("save_trace: write failed on " + path.string());
}

Trace load_trace(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in.is_open())
    throw std::runtime_error("load_trace: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

void encode_trace(wire::Writer& w, const Trace& trace) {
  w.varint(trace.size());
  for (const TimedUpdate& tu : trace) {
    w.f64(tu.time);
    w.varint(tu.update.var);
    w.svarint(tu.update.seqno);
    w.f64(tu.update.value);
  }
}

Trace decode_trace(wire::Reader& r, std::size_t max_updates) {
  const std::uint64_t count = r.varint();
  if (count > max_updates) throw wire::DecodeError("trace too long");
  Trace out;
  out.reserve(static_cast<std::size_t>(count));
  std::map<VarId, SeqNo> last_seqno;
  double last_time = -std::numeric_limits<double>::infinity();
  for (std::uint64_t i = 0; i < count; ++i) {
    TimedUpdate tu;
    tu.time = r.f64();
    const std::uint64_t var = r.varint();
    if (var > UINT32_MAX) throw wire::DecodeError("variable id out of range");
    tu.update.var = static_cast<VarId>(var);
    tu.update.seqno = r.svarint();
    tu.update.value = r.f64();
    // The comparisons are written to reject NaN times as well.
    if (!(tu.time > last_time))
      throw wire::DecodeError("trace times must be strictly increasing");
    auto it = last_seqno.find(tu.update.var);
    if (it != last_seqno.end() && tu.update.seqno <= it->second)
      throw wire::DecodeError(
          "trace seqnos must be strictly increasing per variable");
    last_seqno[tu.update.var] = tu.update.seqno;
    last_time = tu.time;
    out.push_back(tu);
  }
  return out;
}

}  // namespace rcm::trace
