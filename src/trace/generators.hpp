// Workload generators: synthetic stand-ins for the paper's data sources.
//
// The paper's evaluation model only depends on the (varname, seqno, value)
// streams the Data Monitors emit, so these generators reproduce the three
// motivating domains as parameterized stochastic processes:
//
//   - reactor_trace:  mean-reverting temperature random walk with
//                     occasional excursions above the alarm threshold
//                     (the c1/c2/c3 family of examples);
//   - stock_trace:    multiplicative price walk with occasional sharp
//                     drops (the §1 "twenty percent drop" example);
//   - event_trace:    mostly-zero variable with Bernoulli spikes (the
//                     missile-firing example: each spike is one firing);
//   - uniform_trace:  i.i.d. uniform values, used by the property sweeps
//                     where trigger probability should be controllable.
//
// Each update carries a timestamp (the DM's emission time); the
// discrete-event simulator schedules from it and the threaded runtime
// replays it scaled to wall-clock time.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace rcm::trace {

/// One update together with its emission time at the Data Monitor.
struct TimedUpdate {
  double time = 0.0;
  Update update;
};

using Trace = std::vector<TimedUpdate>;

/// Common shape parameters for all generators.
struct TraceParams {
  VarId var = 0;
  std::size_t count = 100;       ///< number of updates to generate
  double period = 1.0;           ///< mean inter-update interval (seconds)
  double jitter = 0.1;           ///< +/- uniform jitter fraction on period
  SeqNo first_seqno = 1;         ///< DM counters start at 1 in the paper
};

/// Mean-reverting temperature walk. Values hover around `baseline` and,
/// with probability `excursion_prob` per step, jump upward by a uniform
/// amount in [excursion_min, excursion_max] before decaying back.
struct ReactorParams {
  TraceParams base;
  double baseline = 2500.0;
  double stddev = 80.0;           ///< per-step Gaussian wiggle
  double reversion = 0.2;         ///< pull-back fraction toward baseline
  double excursion_prob = 0.05;
  double excursion_min = 300.0;
  double excursion_max = 900.0;
};
[[nodiscard]] Trace reactor_trace(const ReactorParams& p, util::Rng& rng);

/// Multiplicative price walk: each step multiplies by exp(N(drift, vol)),
/// and with probability `crash_prob` the price instead drops by a uniform
/// fraction in [crash_min, crash_max] — the "sharp drop" events.
struct StockParams {
  TraceParams base;
  double initial = 100.0;
  double drift = 0.0;
  double volatility = 0.02;
  double crash_prob = 0.03;
  double crash_min = 0.15;
  double crash_max = 0.45;
};
[[nodiscard]] Trace stock_trace(const StockParams& p, util::Rng& rng);

/// Spike process: value is 0, except with probability `event_prob` per
/// step when it is 1 (an event, e.g. "missile fired").
struct EventParams {
  TraceParams base;
  double event_prob = 0.1;
};
[[nodiscard]] Trace event_trace(const EventParams& p, util::Rng& rng);

/// i.i.d. uniform values in [lo, hi]. With a threshold condition
/// "v[0] > t" the per-update trigger probability is exactly
/// (hi - t) / (hi - lo), which the property sweeps exploit.
struct UniformParams {
  TraceParams base;
  double lo = 0.0;
  double hi = 1.0;
};
[[nodiscard]] Trace uniform_trace(const UniformParams& p, util::Rng& rng);

/// Strips timestamps; handy when feeding reference evaluators.
[[nodiscard]] std::vector<Update> updates_of(const Trace& t);

}  // namespace rcm::trace
