// Scripted traces: the exact update sequences used by the paper's worked
// examples and proof counterexamples, so the tests and the
// paper_walkthrough example can replay them verbatim.
#pragma once

#include "trace/generators.hpp"

namespace rcm::trace {

/// Builds a trace from explicit (seqno, value) pairs, with emission times
/// 1.0, 2.0, ... — the timing only matters for the simulator's schedule.
[[nodiscard]] Trace scripted(VarId var,
                             const std::vector<std::pair<SeqNo, double>>& points);

/// Example 1 (§3): U = <1x(2900), 2x(3100), 3x(3200)> against c1
/// "temperature over 3000".
[[nodiscard]] Trace example1_updates(VarId x);

/// The §1 motivating stock sequence: quotes 100, 50, 52 — a sharp drop
/// that replication can double-report.
[[nodiscard]] Trace intro_stock_updates(VarId s);

/// Theorem 3's counterexample inputs: U1 = <1(1000), 2(1500)> and
/// U2 = <3(2000), 4(2500)> against c3.
[[nodiscard]] Trace theorem3_u1(VarId x);
[[nodiscard]] Trace theorem3_u2(VarId x);

/// Theorem 4's counterexample: U = <1(400), 2(700), 3(720)> against c2.
[[nodiscard]] Trace theorem4_updates(VarId x);

/// Theorem 10's counterexample streams: Ux = <1x(1000), 2x(1200)>,
/// Uy = <1y(1050), 2y(1150)> against cm (|x - y| > 100).
[[nodiscard]] Trace theorem10_ux(VarId x);
[[nodiscard]] Trace theorem10_uy(VarId y);

}  // namespace rcm::trace
