#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>

namespace rcm::trace {
namespace {

/// Shared emission-time scaffolding: strictly increasing times with
/// uniform jitter around the configured period.
class Timeline {
 public:
  Timeline(const TraceParams& p, util::Rng& rng) : p_(p), rng_(rng) {}

  TimedUpdate next(double value) {
    const double jitter =
        p_.period * p_.jitter * rng_.uniform(-1.0, 1.0);
    time_ += std::max(1e-9, p_.period + jitter);
    TimedUpdate t;
    t.time = time_;
    t.update = Update{p_.var, seqno_++, value};
    return t;
  }

 private:
  const TraceParams& p_;
  util::Rng& rng_;
  double time_ = 0.0;
  SeqNo seqno_ = p_.first_seqno;
};

}  // namespace

Trace reactor_trace(const ReactorParams& p, util::Rng& rng) {
  Trace out;
  out.reserve(p.base.count);
  Timeline timeline{p.base, rng};
  double temp = p.baseline;
  for (std::size_t i = 0; i < p.base.count; ++i) {
    temp += rng.normal(0.0, p.stddev);
    temp += p.reversion * (p.baseline - temp);
    if (rng.bernoulli(p.excursion_prob))
      temp += rng.uniform(p.excursion_min, p.excursion_max);
    out.push_back(timeline.next(temp));
  }
  return out;
}

Trace stock_trace(const StockParams& p, util::Rng& rng) {
  Trace out;
  out.reserve(p.base.count);
  Timeline timeline{p.base, rng};
  double price = p.initial;
  for (std::size_t i = 0; i < p.base.count; ++i) {
    if (rng.bernoulli(p.crash_prob)) {
      price *= 1.0 - rng.uniform(p.crash_min, p.crash_max);
    } else {
      price *= std::exp(rng.normal(p.drift, p.volatility));
    }
    price = std::max(price, 0.01);
    out.push_back(timeline.next(price));
  }
  return out;
}

Trace event_trace(const EventParams& p, util::Rng& rng) {
  Trace out;
  out.reserve(p.base.count);
  Timeline timeline{p.base, rng};
  for (std::size_t i = 0; i < p.base.count; ++i)
    out.push_back(timeline.next(rng.bernoulli(p.event_prob) ? 1.0 : 0.0));
  return out;
}

Trace uniform_trace(const UniformParams& p, util::Rng& rng) {
  Trace out;
  out.reserve(p.base.count);
  Timeline timeline{p.base, rng};
  for (std::size_t i = 0; i < p.base.count; ++i)
    out.push_back(timeline.next(rng.uniform(p.lo, p.hi)));
  return out;
}

std::vector<Update> updates_of(const Trace& t) {
  std::vector<Update> out;
  out.reserve(t.size());
  for (const TimedUpdate& tu : t) out.push_back(tu.update);
  return out;
}

}  // namespace rcm::trace
