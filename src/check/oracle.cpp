#include "check/oracle.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "core/evaluator.hpp"
#include "core/sequence.hpp"

namespace rcm::check {
namespace {

std::set<AlertKey> key_set(std::span<const Alert> alerts) {
  std::set<AlertKey> out;
  for (const Alert& a : alerts) out.insert(a.key());
  return out;
}

/// Does T(candidate) contain every displayed alert?
bool covers(const SystemRun& run, const std::vector<Update>& candidate) {
  const auto ref = key_set(evaluate_trace(run.condition, candidate));
  return std::all_of(run.displayed.begin(), run.displayed.end(),
                     [&](const Alert& a) { return ref.count(a.key()) != 0; });
}

/// Enumerates every interleaving of `streams` (preserving each stream's
/// internal order) and calls `fn` on each; `fn` returning true stops the
/// enumeration. Returns whether any call returned true.
bool for_each_interleaving(
    const std::vector<std::vector<Update>>& streams,
    const std::function<bool(const std::vector<Update>&)>& fn) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  std::vector<Update> current;
  current.reserve(total);
  std::vector<std::size_t> pos(streams.size(), 0);

  std::function<bool()> rec = [&]() -> bool {
    if (current.size() == total) return fn(current);
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (pos[i] >= streams[i].size()) continue;
      current.push_back(streams[i][pos[i]]);
      ++pos[i];
      const bool found = rec();
      --pos[i];
      current.pop_back();
      if (found) return true;
    }
    return false;
  };
  return rec();
}

}  // namespace

std::optional<bool> oracle_consistent(const SystemRun& run,
                                      const OracleLimits& limits) {
  const auto unions = combined_inputs(run.ce_inputs);

  if (run.condition->variables().size() == 1) {
    const std::vector<Update>& u =
        unions.empty() ? std::vector<Update>{} : unions.front().second;
    if (u.size() > limits.max_single_var_updates) return std::nullopt;
    const std::size_t n = u.size();
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      std::vector<Update> candidate;
      for (std::size_t i = 0; i < n; ++i)
        if (mask & (1ULL << i)) candidate.push_back(u[i]);
      if (covers(run, candidate)) return true;
    }
    return false;
  }

  // Multi variable: every per-variable subset, then every interleaving.
  std::size_t total = 0;
  for (const auto& [var, seq] : unions) total += seq.size();
  if (total > limits.max_multi_var_updates) return std::nullopt;

  // Flatten subset choice into one mask over all updates.
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // (stream, index)
  for (std::size_t s = 0; s < unions.size(); ++s)
    for (std::size_t i = 0; i < unions[s].second.size(); ++i)
      spans.emplace_back(s, i);

  for (std::uint64_t mask = 0; mask < (1ULL << total); ++mask) {
    std::vector<std::vector<Update>> streams(unions.size());
    for (std::size_t b = 0; b < total; ++b)
      if (mask & (1ULL << b)) {
        const auto [s, i] = spans[b];
        streams[s].push_back(unions[s].second[i]);
      }
    const bool found = for_each_interleaving(
        streams,
        [&](const std::vector<Update>& candidate) { return covers(run, candidate); });
    if (found) return true;
  }
  return false;
}

std::optional<bool> oracle_complete(const SystemRun& run,
                                    const OracleLimits& limits) {
  const auto unions = combined_inputs(run.ce_inputs);
  std::size_t total = 0;
  std::vector<std::vector<Update>> streams;
  for (const auto& [var, seq] : unions) {
    total += seq.size();
    streams.push_back(seq);
  }
  if (run.condition->variables().size() > 1 &&
      total > limits.max_multi_var_updates)
    return std::nullopt;
  if (run.condition->variables().size() == 1 &&
      total > limits.max_single_var_updates)
    return std::nullopt;

  const auto target = key_set(run.displayed);
  return for_each_interleaving(streams, [&](const std::vector<Update>& uv) {
    return key_set(evaluate_trace(run.condition, uv)) == target;
  });
}

}  // namespace rcm::check
