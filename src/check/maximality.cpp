#include "check/maximality.hpp"

#include <algorithm>

namespace rcm::check {

std::vector<MaximalityViolation> verify_locally_maximal(
    AlertFilter& filter, std::span<const Alert> arrivals,
    const std::vector<VarId>& vars, const ViolatesFn& violates) {
  filter.reset();
  std::vector<MaximalityViolation> violations;
  std::vector<Alert> displayed;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Alert& a = arrivals[i];
    if (filter.offer(a)) {
      displayed.push_back(a);
      continue;
    }
    // Duplicate by exact key?
    const bool dup_key =
        std::any_of(displayed.begin(), displayed.end(),
                    [&](const Alert& d) { return d.key() == a.key(); });
    // Duplicate by sequence numbers against the previous display (the
    // paper's `<=` duplicate reading, per variable set)?
    const bool dup_seqnos =
        !displayed.empty() &&
        std::all_of(vars.begin(), vars.end(), [&](VarId v) {
          return a.seqno(v) == displayed.back().seqno(v);
        });
    if (dup_key || dup_seqnos) continue;
    if (!violates(displayed, a))
      violations.push_back(MaximalityViolation{i, a});
  }
  return violations;
}

}  // namespace rcm::check
