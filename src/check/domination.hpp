// The domination relation between AD algorithms (paper §4.1).
//
// G1 dominates G2 (G1 >= G2) if for every input interleaving, G1's output
// is a supersequence of G2's output; strictly dominates if additionally
// some input separates them. These helpers evaluate the relation
// *empirically* on a given set of interleavings: the benches sweep
// thousands of randomized runs and report the observed relation, which
// for AD-1 vs AD-2/AD-3/AD-4 reproduces Theorems 6 and 8.
#pragma once

#include <span>
#include <vector>

#include "core/displayer.hpp"
#include "core/filters.hpp"

namespace rcm::check {

/// Outcome of comparing two filters on a set of arrival interleavings.
struct DominationObservation {
  std::size_t runs = 0;
  std::size_t supersequence_runs = 0;  ///< G1 output ⊒ G2 output
  std::size_t strict_runs = 0;         ///< ⊒ and strictly longer
  std::size_t g1_alerts = 0;           ///< total alerts G1 displayed
  std::size_t g2_alerts = 0;           ///< total alerts G2 displayed

  /// True iff G1's output was a supersequence of G2's in every run.
  [[nodiscard]] bool dominates() const noexcept {
    return runs > 0 && supersequence_runs == runs;
  }
  /// True iff dominates() and at least one run separated the two.
  [[nodiscard]] bool strictly_dominates() const noexcept {
    return dominates() && strict_runs > 0;
  }
};

/// True iff `small` is a subsequence of `big`, comparing alerts by key.
[[nodiscard]] bool is_alert_subsequence(std::span<const Alert> small,
                                        std::span<const Alert> big);

/// Runs both filters (reset first) over the same arrival interleaving and
/// folds the comparison into `obs`.
void observe_domination(AlertFilter& g1, AlertFilter& g2,
                        std::span<const Alert> arrivals,
                        DominationObservation& obs);

}  // namespace rcm::check
