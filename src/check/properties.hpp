// Property checkers for replicated monitoring runs (paper §3.1 and
// Appendix C).
//
// Given a run of a replicated system — the condition, the update sequence
// U_i each CE replica actually received, and the final displayed alert
// sequence A — these functions decide mechanically whether the run
// satisfied:
//
//   Orderedness:  A is ordered with respect to every variable in V.
//   Completeness: Phi(A) = Phi(T(U1 ⊔ U2))            (single variable)
//                 exists an interleaving UV of the per-variable ordered
//                 unions with Phi(A) = Phi(T(UV))      (multi variable)
//   Consistency:  exists U' ⊑ U1 ⊔ U2 (resp. ⊑ some UV) with
//                 Phi(A) ⊆ Phi(T(U')).
//
// Orderedness and single-variable completeness are direct. Consistency is
// decided *exactly* in polynomial time (consistency.hpp); multi-variable
// completeness requires a search over interleavings and may return
// "unknown" when the bounded search is exhausted (completeness.hpp).
// Brute-force oracles cross-validate both in the test suite (oracle.hpp).
#pragma once

#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/alert.hpp"
#include "core/condition.hpp"

namespace rcm::check {

/// One observed run of a replicated system, in the vocabulary of Figure 2:
/// per-CE received updates U_i and the displayed output A.
struct SystemRun {
  ConditionPtr condition;
  std::vector<std::vector<Update>> ce_inputs;  ///< U_i, one per CE replica
  std::vector<Alert> displayed;                ///< A
};

/// Tri-state verdict; kUnknown only occurs for bounded searches.
enum class Verdict { kHolds, kViolated, kUnknown };

/// All three properties of one run.
struct PropertyReport {
  Verdict ordered = Verdict::kUnknown;
  Verdict complete = Verdict::kUnknown;
  Verdict consistent = Verdict::kUnknown;
};

/// Orderedness: Pi_v(A) non-decreasing for every v in V.
[[nodiscard]] bool check_ordered(std::span<const Alert> a,
                                 const std::vector<VarId>& vars);

/// Per-variable ordered union of all CE inputs: the combined update
/// knowledge of the replicas, ascending by VarId.
[[nodiscard]] std::vector<std::pair<VarId, std::vector<Update>>>
combined_inputs(const std::vector<std::vector<Update>>& ce_inputs);

/// The alerts of `a` whose triggering update for `v` — the latest
/// history sequence number, a.seqno(v) — lies in `seqnos`: the slice of
/// a display stream owned by one traffic source. Alerts without a
/// v-history are never in any slice.
[[nodiscard]] std::vector<Alert> restrict_to_seqnos(
    std::span<const Alert> a, VarId v, const std::set<SeqNo>& seqnos);

/// Evaluates all three properties of a run. `interleaving_budget` bounds
/// the multi-variable completeness search (see completeness.hpp).
[[nodiscard]] PropertyReport check_run(const SystemRun& run,
                                       std::size_t interleaving_budget = 200000);

}  // namespace rcm::check
