#include "check/domination.hpp"

namespace rcm::check {

bool is_alert_subsequence(std::span<const Alert> small,
                          std::span<const Alert> big) {
  std::size_t i = 0;
  for (std::size_t j = 0; i < small.size() && j < big.size(); ++j)
    if (small[i].key() == big[j].key()) ++i;
  return i == small.size();
}

void observe_domination(AlertFilter& g1, AlertFilter& g2,
                        std::span<const Alert> arrivals,
                        DominationObservation& obs) {
  const std::vector<Alert> out1 = run_filter(g1, arrivals);
  const std::vector<Alert> out2 = run_filter(g2, arrivals);
  ++obs.runs;
  obs.g1_alerts += out1.size();
  obs.g2_alerts += out2.size();
  if (is_alert_subsequence(out2, out1)) {
    ++obs.supersequence_runs;
    if (out1.size() > out2.size()) ++obs.strict_runs;
  }
}

}  // namespace rcm::check
