#include "check/report.hpp"

#include <map>
#include <sstream>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "core/alert.hpp"

namespace rcm::check {
namespace {

std::string var_name(const VariableRegistry& vars, VarId v) {
  try {
    return vars.name(v);
  } catch (const std::out_of_range&) {
    return "v" + std::to_string(v);
  }
}

/// Like rcm::to_string(Alert, registry) but tolerant of VarIds the
/// registry has never seen (recorded runs may predate the registry).
std::string alert_text(const Alert& a, const VariableRegistry& vars) {
  std::ostringstream os;
  os << a.cond << "{";
  bool first = true;
  for (const auto& [var, window] : a.histories) {
    if (!first) os << ", ";
    first = false;
    os << var_name(vars, var) << ":[";
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (i) os << ",";
      os << window[i].seqno;
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string verdict_text(Verdict v) {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "VIOLATED";
    case Verdict::kUnknown: return "undecided (search budget exhausted)";
  }
  return "?";
}

}  // namespace

std::string describe_run(const SystemRun& run, const VariableRegistry& vars,
                         const ReportOptions& options) {
  std::ostringstream out;
  const Condition& cond = *run.condition;

  out << "condition " << cond.name() << " over {";
  bool first = true;
  for (VarId v : cond.variables()) {
    if (!first) out << ", ";
    first = false;
    out << var_name(vars, v) << " (degree " << cond.degree(v) << ")";
  }
  out << "}, "
      << (cond.triggering() == Triggering::kConservative ? "conservative"
                                                         : "aggressive")
      << " triggering\n\n";

  out << "replicas:\n";
  for (std::size_t i = 0; i < run.ce_inputs.size(); ++i) {
    out << "  CE" << i + 1 << ": " << run.ce_inputs[i].size()
        << " updates received";
    if (!run.ce_inputs[i].empty()) {
      out << " (";
      // Per-variable reception summary.
      std::map<VarId, std::size_t> per_var;
      for (const Update& u : run.ce_inputs[i]) ++per_var[u.var];
      bool f = true;
      for (const auto& [v, n] : per_var) {
        if (!f) out << ", ";
        f = false;
        out << n << " of " << var_name(vars, v);
      }
      out << ")";
    }
    out << "\n";
  }

  out << "\ndisplayed alerts (" << run.displayed.size() << "):\n";
  const std::size_t limit =
      options.max_listed == 0 ? run.displayed.size() : options.max_listed;
  for (std::size_t i = 0; i < run.displayed.size() && i < limit; ++i)
    out << "  " << alert_text(run.displayed[i], vars) << "\n";
  if (run.displayed.size() > limit)
    out << "  ... " << run.displayed.size() - limit << " more\n";

  out << "\nproperties (vs the corresponding non-replicated system):\n";
  out << "  ordered    : "
      << (check_ordered(run.displayed, cond.variables()) ? "holds"
                                                         : "VIOLATED")
      << "\n";
  out << "  complete   : " << verdict_text(check_complete(run)) << "\n";
  const auto consistency = check_consistent(run);
  out << "  consistent : " << (consistency.consistent ? "holds" : "VIOLATED")
      << "\n";
  if (!consistency.consistent) {
    out << "    reason: " << consistency.reason << "\n";
  } else if (options.show_witness && !consistency.witness.empty()) {
    out << "    witness input (single evaluator reproducing every "
           "displayed alert):\n      ";
    const std::size_t wlimit = options.max_listed == 0
                                   ? consistency.witness.size()
                                   : options.max_listed;
    for (std::size_t i = 0; i < consistency.witness.size() && i < wlimit;
         ++i) {
      const Update& u = consistency.witness[i];
      out << var_name(vars, u.var) << "#" << u.seqno << " ";
    }
    if (consistency.witness.size() > wlimit)
      out << "... +" << consistency.witness.size() - wlimit;
    out << "\n";
  }
  return out.str();
}

}  // namespace rcm::check
