// Exact consistency decision (paper §3.1 def. 3, Appendix C def. 3).
//
// Key observation (single variable): an alert a whose history window has
// seqnos s1 < s2 < ... < sd constrains any witness sequence U' exactly:
//
//   - every si must be present in U' (the CE received them), and
//   - every seqno strictly between s1 and sd that is *not* one of the si
//     must be absent from U' (the CE had not received it when a fired,
//     and the window updates were the d most recent at that point).
//
// Conversely, if the union of all alerts' demands is conflict-free, the
// sequence U' consisting of exactly the demanded-present updates triggers
// every alert in A (each alert's condition re-evaluates true on its own
// window, and the window is exactly the last d received when sd arrives).
// So: consistent  <=>  no seqno is demanded both present and absent, each
// alert's window re-evaluates to true, and every demanded update exists
// in U1 ⊔ U2. This mirrors precisely the Received/Missed ledger of
// Algorithm AD-3 — which is why AD-3 is maximally consistent.
//
// Multi-variable: the same per-variable demands apply, plus *precedence*
// constraints between updates of different variables (Lemma 5): alert a
// requires, for every ordered pair of distinct variables (v, w),
//
//   a's H_v[0]  arrives before  the next demanded-present w-update
//                               after a's H_w[0] (if any).
//
// A witness interleaving exists iff the per-variable demands are
// conflict-free and the precedence graph (per-variable chains + the alert
// edges above) is acyclic; any topological order is a witness UV.
#pragma once

#include <string>
#include <vector>

#include "check/properties.hpp"

namespace rcm::check {

/// Result with an explanation for violated runs (used in test diagnostics
/// and the bench reports) and a constructive witness for consistent ones.
struct ConsistencyResult {
  bool consistent = false;
  std::string reason;  ///< empty when consistent

  /// When consistent: a witness input U' — a subsequence of the combined
  /// inputs (single variable) or an interleaving of per-variable
  /// subsequences (multi variable) such that Phi(A) ⊆ Phi(T(U')). The
  /// verdict is therefore independently checkable by re-running the
  /// reference evaluator over the witness.
  std::vector<Update> witness;
};

/// Exact consistency check; handles single- and multi-variable conditions.
[[nodiscard]] ConsistencyResult check_consistent(const SystemRun& run);

}  // namespace rcm::check
