// Run recording: serialize an observed SystemRun (per-replica inputs +
// displayed alerts) so it can be audited later — re-checked against the
// paper's properties, diffed, or attached to an incident report. The
// condition itself is code/configuration and is NOT recorded; the loader
// takes it as a parameter (and the checkers will immediately flag a
// mismatched condition as inconsistent alerts).
//
// Format: one CRC frame (wire/frame.hpp) containing
//   tag 'R' | version | #inputs | per input (#updates | updates...) |
//   #displayed | encoded alerts (full histories)
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "check/properties.hpp"

namespace rcm::check {

/// Serializes inputs and displayed alerts (not the condition).
[[nodiscard]] std::vector<std::uint8_t> encode_system_run(
    const SystemRun& run);

/// Rebuilds a run from encode_system_run output; throws wire::DecodeError
/// on malformed bytes.
[[nodiscard]] SystemRun decode_system_run(
    std::span<const std::uint8_t> bytes, ConditionPtr condition);

/// File conveniences (framed, CRC-checked). save overwrites.
void save_run(const std::filesystem::path& path, const SystemRun& run);
[[nodiscard]] SystemRun load_run(const std::filesystem::path& path,
                                 ConditionPtr condition);

/// FNV-1a 64-bit digest over arbitrary bytes; exposed so callers can fold
/// additional observations (e.g. display timestamps) into a run digest
/// with the same function. `seed` chains digests: pass a previous result.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Stable fingerprint of a run: fnv1a over encode_system_run(run). Two
/// runs have equal digests iff their serialized inputs and displayed
/// alerts are bit-for-bit identical — the equality the swarm harness uses
/// to certify that a replayed counterexample reproduced exactly.
[[nodiscard]] std::uint64_t run_digest(const SystemRun& run);

}  // namespace rcm::check
