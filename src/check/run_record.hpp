// Run recording: serialize an observed SystemRun (per-replica inputs +
// displayed alerts) so it can be audited later — re-checked against the
// paper's properties, diffed, or attached to an incident report. The
// condition itself is code/configuration and is NOT recorded; the loader
// takes it as a parameter (and the checkers will immediately flag a
// mismatched condition as inconsistent alerts).
//
// Format: one CRC frame (wire/frame.hpp) containing
//   tag 'R' | version | #inputs | per input (#updates | updates...) |
//   #displayed | encoded alerts (full histories)
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "check/properties.hpp"

namespace rcm::check {

/// Serializes inputs and displayed alerts (not the condition).
[[nodiscard]] std::vector<std::uint8_t> encode_system_run(
    const SystemRun& run);

/// Rebuilds a run from encode_system_run output; throws wire::DecodeError
/// on malformed bytes.
[[nodiscard]] SystemRun decode_system_run(
    std::span<const std::uint8_t> bytes, ConditionPtr condition);

/// File conveniences (framed, CRC-checked). save overwrites.
void save_run(const std::filesystem::path& path, const SystemRun& run);
[[nodiscard]] SystemRun load_run(const std::filesystem::path& path,
                                 ConditionPtr condition);

}  // namespace rcm::check
