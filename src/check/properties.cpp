#include "check/properties.hpp"

#include <algorithm>
#include <map>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "core/sequence.hpp"

namespace rcm::check {

bool check_ordered(std::span<const Alert> a, const std::vector<VarId>& vars) {
  return std::all_of(vars.begin(), vars.end(),
                     [&](VarId v) { return is_ordered(a, v); });
}

std::vector<std::pair<VarId, std::vector<Update>>> combined_inputs(
    const std::vector<std::vector<Update>>& ce_inputs) {
  std::map<VarId, std::vector<Update>> acc;
  for (const auto& input : ce_inputs) {
    for (const auto& [var, seq] : split_by_var(input)) {
      auto& cur = acc[var];
      cur = ordered_union(std::span<const Update>{cur},
                          std::span<const Update>{seq});
    }
  }
  return {acc.begin(), acc.end()};
}

std::vector<Alert> restrict_to_seqnos(std::span<const Alert> a, VarId v,
                                      const std::set<SeqNo>& seqnos) {
  std::vector<Alert> out;
  for (const Alert& alert : a) {
    const auto it = alert.histories.find(v);
    if (it == alert.histories.end() || it->second.empty()) continue;
    if (seqnos.count(alert.seqno(v))) out.push_back(alert);
  }
  return out;
}

PropertyReport check_run(const SystemRun& run,
                         std::size_t interleaving_budget) {
  PropertyReport report;
  const auto& vars = run.condition->variables();
  report.ordered = check_ordered(run.displayed, vars) ? Verdict::kHolds
                                                      : Verdict::kViolated;
  report.complete = check_complete(run, interleaving_budget);
  report.consistent = check_consistent(run).consistent ? Verdict::kHolds
                                                       : Verdict::kViolated;
  return report;
}

}  // namespace rcm::check
