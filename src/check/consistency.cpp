#include "check/consistency.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "core/evaluator.hpp"
#include "core/history.hpp"
#include "core/sequence.hpp"

namespace rcm::check {
namespace {

/// Per-variable demanded-present / demanded-absent seqno sets.
struct Demands {
  std::map<VarId, std::set<SeqNo>> present;
  std::map<VarId, std::set<SeqNo>> absent;
};

/// Re-evaluates `a`'s condition on the exact windows the alert carries;
/// an alert that does not evaluate true on its own histories cannot be in
/// any T(U'). Returns false as well when a window has the wrong width
/// (a real CE only fires on fully defined histories).
bool alert_self_consistent(const Condition& cond, const Alert& a) {
  HistorySet h = cond.make_history_set();
  for (VarId v : cond.variables()) {
    auto it = a.histories.find(v);
    if (it == a.histories.end()) return false;
    const auto& window = it->second;
    if (static_cast<int>(window.size()) != cond.degree(v)) return false;
    for (const Update& u : window) h.push(u);
  }
  if (!h.all_defined()) return false;
  return cond.evaluate(h);
}

/// Folds one alert's per-variable demands into `d`. Returns false on an
/// internal contradiction (cannot happen for windows from a real History,
/// which are strictly increasing).
bool fold_demands(const Alert& a, Demands& d) {
  for (const auto& [var, window] : a.histories) {
    SeqNo prev = kNoSeqNo;
    for (const Update& u : window) {
      if (prev != kNoSeqNo) {
        if (u.seqno <= prev) return false;  // malformed window
        for (SeqNo s = prev + 1; s < u.seqno; ++s) d.absent[var].insert(s);
      }
      d.present[var].insert(u.seqno);
      prev = u.seqno;
    }
  }
  return true;
}

}  // namespace

ConsistencyResult check_consistent(const SystemRun& run) {
  const Condition& cond = *run.condition;
  const auto unions = combined_inputs(run.ce_inputs);

  auto union_of = [&](VarId v) -> const std::vector<Update>* {
    for (const auto& [var, seq] : unions)
      if (var == v) return &seq;
    return nullptr;
  };

  // 1. Per-alert sanity: windows must re-evaluate true, and every update
  //    an alert claims received must exist in the combined inputs.
  Demands demands;
  for (const Alert& a : run.displayed) {
    if (!alert_self_consistent(cond, a)) {
      std::ostringstream msg;
      msg << "alert " << a << " does not re-evaluate true on its windows";
      return {false, msg.str(), {}};
    }
    if (!fold_demands(a, demands)) {
      std::ostringstream msg;
      msg << "alert " << a << " carries a malformed history window";
      return {false, msg.str(), {}};
    }
  }
  for (const auto& [var, seqs] : demands.present) {
    const std::vector<Update>* u = union_of(var);
    for (SeqNo s : seqs) {
      const bool known =
          u && std::any_of(u->begin(), u->end(),
                           [&](const Update& up) { return up.seqno == s; });
      if (!known) {
        std::ostringstream msg;
        msg << "alert demands update " << s << " of variable " << var
            << " which no CE received";
        return {false, msg.str(), {}};
      }
    }
  }

  // 2. Present/absent conflict — the single-variable core of consistency.
  for (const auto& [var, pres] : demands.present) {
    const auto it = demands.absent.find(var);
    if (it == demands.absent.end()) continue;
    for (SeqNo s : pres) {
      if (it->second.count(s)) {
        std::ostringstream msg;
        msg << "update " << s << " of variable " << var
            << " is demanded both received and missed";
        return {false, msg.str(), {}};
      }
    }
  }

  // Looks up the full update (with its value) in the combined inputs;
  // step 1 guaranteed every demanded-present update exists there.
  auto update_of = [&](VarId v, SeqNo s) {
    const std::vector<Update>* u = union_of(v);
    for (const Update& up : *u)
      if (up.seqno == s) return up;
    return Update{v, s, 0.0};  // unreachable after step 1
  };

  // 3. Multi-variable precedence: build the graph over demanded-present
  //    updates and test acyclicity (Lemma 5 generalized).
  if (cond.variables().size() > 1) {
    // Node ids: index into a flat list of (var, seqno), ascending.
    std::map<std::pair<VarId, SeqNo>, int> node_id;
    std::vector<std::vector<int>> adj;
    std::vector<std::pair<VarId, SeqNo>> node_info;
    auto node = [&](VarId v, SeqNo s) {
      auto [it, inserted] = node_id.try_emplace({v, s}, static_cast<int>(adj.size()));
      if (inserted) {
        adj.emplace_back();
        node_info.emplace_back(v, s);
      }
      return it->second;
    };

    // Per-variable chains over demanded-present updates.
    for (const auto& [var, seqs] : demands.present) {
      int prev = -1;
      for (SeqNo s : seqs) {  // std::set iterates ascending
        const int cur = node(var, s);
        if (prev >= 0) adj[prev].push_back(cur);
        prev = cur;
      }
    }

    // Successor of seqno s among variable v's demanded-present set.
    auto succ = [&](VarId v, SeqNo s) -> std::optional<SeqNo> {
      auto it = demands.present.find(v);
      if (it == demands.present.end()) return std::nullopt;
      auto up = it->second.upper_bound(s);
      if (up == it->second.end()) return std::nullopt;
      return *up;
    };

    for (const Alert& a : run.displayed) {
      const auto vars = cond.variables();
      for (VarId v : vars) {
        for (VarId w : vars) {
          if (v == w) continue;
          const auto next_w = succ(w, a.seqno(w));
          if (!next_w) continue;
          adj[node(v, a.seqno(v))].push_back(node(w, *next_w));
        }
      }
    }

    // Kahn's algorithm; the emission order is the witness interleaving.
    std::vector<int> indeg(adj.size(), 0);
    for (const auto& outs : adj)
      for (int t : outs) ++indeg[static_cast<std::size_t>(t)];
    std::queue<int> ready;
    for (std::size_t i = 0; i < adj.size(); ++i)
      if (indeg[i] == 0) ready.push(static_cast<int>(i));
    std::vector<Update> order;
    order.reserve(adj.size());
    while (!ready.empty()) {
      const int n = ready.front();
      ready.pop();
      const auto& [var, seqno] = node_info[static_cast<std::size_t>(n)];
      order.push_back(update_of(var, seqno));
      for (int t : adj[static_cast<std::size_t>(n)])
        if (--indeg[static_cast<std::size_t>(t)] == 0) ready.push(t);
    }
    if (order.size() != adj.size()) {
      return {false,
              "alert precedence constraints form a cycle: no interleaving "
              "of the data streams can produce all displayed alerts",
              {}};
    }
    ConsistencyResult result;
    result.consistent = true;
    result.witness = std::move(order);
    return result;
  }

  // Single variable: the witness U' is simply the demanded-present
  // updates in ascending order.
  ConsistencyResult result;
  result.consistent = true;
  for (const auto& [var, seqs] : demands.present)
    for (SeqNo s : seqs) result.witness.push_back(update_of(var, s));
  return result;
}

}  // namespace rcm::check
