// Local maximality verification (Theorems 5, 7, 9 made checkable).
//
// An AD algorithm that guarantees property P is *maximal* if no
// P-guaranteeing algorithm strictly dominates it. The checkable local
// counterpart on a concrete arrival interleaving: every alert the
// algorithm suppressed would, if displayed at its arrival position,
// have violated P (or duplicated an already-displayed alert, which the
// paper's algorithms all suppress by design). If some suppressed alert
// passes that test, the algorithm dropped more than P required — a
// strictly more permissive P-guaranteeing competitor exists, refuting
// maximality on this input.
//
// The verifier replays the interleaving, and for each suppression asks a
// caller-supplied predicate whether the hypothetical display would have
// violated the property. tests/theorems_test.cpp runs it over randomized
// simulated runs for AD-2 / AD-3 / AD-4.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/displayer.hpp"
#include "core/filters.hpp"

namespace rcm::check {

/// One suppression the property predicate did not justify.
struct MaximalityViolation {
  std::size_t arrival_index = 0;  ///< position in the arrival stream
  Alert alert;                    ///< the unjustified suppression
};

/// Property predicate: would displaying `candidate` after `displayed`
/// violate the property the filter guarantees?
using ViolatesFn = std::function<bool(std::span<const Alert> displayed,
                                      const Alert& candidate)>;

/// Replays `arrivals` through `filter` (reset first) and returns every
/// suppression that is neither a duplicate (same key as a displayed
/// alert, or — per the paper's `<=` reading — equal to the previous
/// display in every variable of `vars`) nor justified by `violates`.
/// An empty result is the local-maximality witness for this input.
[[nodiscard]] std::vector<MaximalityViolation> verify_locally_maximal(
    AlertFilter& filter, std::span<const Alert> arrivals,
    const std::vector<VarId>& vars, const ViolatesFn& violates);

}  // namespace rcm::check
