#include "check/completeness.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/evaluator.hpp"
#include "core/history.hpp"
#include "core/sequence.hpp"

namespace rcm::check {
namespace {

std::set<AlertKey> key_set(std::span<const Alert> alerts) {
  std::set<AlertKey> out;
  for (const Alert& a : alerts) out.insert(a.key());
  return out;
}

Verdict check_single_var(const SystemRun& run,
                         const std::vector<Update>& union_seq) {
  const std::vector<Alert> ref = evaluate_trace(run.condition, union_seq);
  return key_set(run.displayed) == key_set(ref) ? Verdict::kHolds
                                                : Verdict::kViolated;
}

/// DFS over interleavings of the per-variable unions; see header.
class InterleavingSearch {
 public:
  InterleavingSearch(const SystemRun& run,
                     std::vector<std::pair<VarId, std::vector<Update>>> unions,
                     std::size_t budget)
      : run_(run), unions_(std::move(unions)), budget_(budget) {
    for (const Alert& a : run.displayed)
      target_.try_emplace(a.key(), target_.size());  // dedup keys: Phi is a set
    if (target_.size() > 63) budget_ = 0;  // bitmask limit; report unknown
  }

  Verdict search(std::vector<Update>* witness) {
    if (budget_ == 0) return Verdict::kUnknown;
    HistorySet h = run_.condition->make_history_set();
    const bool found =
        dfs(std::vector<std::size_t>(unions_.size(), 0), h, 0);
    if (exhausted_) return Verdict::kUnknown;
    if (found && witness) *witness = path_;
    return found ? Verdict::kHolds : Verdict::kViolated;
  }

 private:
  using Positions = std::vector<std::size_t>;

  bool dfs(const Positions& pos, const HistorySet& h, std::uint64_t covered) {
    if (exhausted_) return false;
    if (++states_ > budget_) {
      exhausted_ = true;
      return false;
    }
    bool done = true;
    for (std::size_t i = 0; i < unions_.size(); ++i)
      if (pos[i] < unions_[i].second.size()) done = false;
    if (done) {
      // Full interleaving consumed; witness iff every displayed alert
      // was generated (extras were pruned on the way).
      return covered == (target_.empty() ? 0 : (1ULL << target_.size()) - 1);
    }
    const auto memo_key = std::make_pair(pos, covered);
    if (!failed_.insert(memo_key).second) return false;  // known dead end

    for (std::size_t i = 0; i < unions_.size(); ++i) {
      if (pos[i] >= unions_[i].second.size()) continue;
      const Update& u = unions_[i].second[pos[i]];
      HistorySet next_h = h;
      next_h.push(u);
      std::uint64_t next_covered = covered;
      if (next_h.all_defined() && run_.condition->evaluate(next_h)) {
        const Alert a = make_alert(std::string{run_.condition->name()}, next_h);
        auto it = target_.find(a.key());
        if (it == target_.end()) continue;  // extra alert: prune this branch
        next_covered |= 1ULL << it->second;
      }
      Positions next_pos = pos;
      ++next_pos[i];
      path_.push_back(u);
      if (dfs(next_pos, next_h, next_covered)) return true;
      path_.pop_back();
      if (exhausted_) return false;
    }
    return false;
  }

  const SystemRun& run_;
  std::vector<std::pair<VarId, std::vector<Update>>> unions_;
  std::size_t budget_;
  std::size_t states_ = 0;
  bool exhausted_ = false;
  std::map<AlertKey, std::size_t> target_;
  std::set<std::pair<Positions, std::uint64_t>> failed_;
  std::vector<Update> path_;  ///< current DFS prefix; full on success
};

}  // namespace

Verdict check_complete(const SystemRun& run, std::size_t interleaving_budget,
                       std::vector<Update>* witness) {
  auto unions = combined_inputs(run.ce_inputs);
  const auto& vars = run.condition->variables();

  if (vars.size() == 1) {
    // There may be zero updates of the variable at all.
    for (const auto& [var, seq] : unions)
      if (var == vars[0]) {
        const Verdict v = check_single_var(run, seq);
        if (v == Verdict::kHolds && witness) *witness = seq;
        return v;
      }
    const Verdict v = check_single_var(run, {});
    if (v == Verdict::kHolds && witness) witness->clear();
    return v;
  }

  // Ensure every condition variable has a (possibly empty) stream so the
  // DFS's position vector lines up with V.
  std::vector<std::pair<VarId, std::vector<Update>>> full;
  for (VarId v : vars) {
    auto it = std::find_if(unions.begin(), unions.end(),
                           [&](const auto& p) { return p.first == v; });
    full.emplace_back(v, it == unions.end() ? std::vector<Update>{}
                                            : std::move(it->second));
  }
  InterleavingSearch search{run, std::move(full), interleaving_budget};
  return search.search(witness);
}

}  // namespace rcm::check
