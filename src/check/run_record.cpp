#include "check/run_record.hpp"

#include <fstream>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::check {
namespace {

constexpr std::uint8_t kRunTag = 0x52;  // 'R'
constexpr std::uint8_t kVersion = 1;
constexpr std::uint64_t kMaxCount = 1u << 24;

}  // namespace

std::vector<std::uint8_t> encode_system_run(const SystemRun& run) {
  wire::Writer w;
  w.u8(kRunTag);
  w.u8(kVersion);
  w.varint(run.ce_inputs.size());
  for (const auto& input : run.ce_inputs) {
    w.varint(input.size());
    for (const Update& u : input) {
      const auto bytes = wire::encode_update(u);
      w.varint(bytes.size());
      w.raw(bytes);
    }
  }
  w.varint(run.displayed.size());
  for (const Alert& a : run.displayed) {
    const auto bytes =
        wire::encode_alert(a, wire::AlertEncoding::kFullHistories);
    w.varint(bytes.size());
    w.raw(bytes);
  }
  return w.take();
}

SystemRun decode_system_run(std::span<const std::uint8_t> bytes,
                            ConditionPtr condition) {
  wire::Reader r{bytes};
  if (r.u8() != kRunTag) throw wire::DecodeError("not a recorded run");
  if (r.u8() != kVersion)
    throw wire::DecodeError("unsupported run record version");

  auto read_blob = [&r]() {
    const std::uint64_t len = r.varint();
    if (len > (1u << 20)) throw wire::DecodeError("record entry too large");
    std::vector<std::uint8_t> blob;
    blob.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len; ++i) blob.push_back(r.u8());
    return blob;
  };

  SystemRun run;
  run.condition = std::move(condition);
  const std::uint64_t inputs = r.varint();
  if (inputs > kMaxCount) throw wire::DecodeError("too many replicas");
  for (std::uint64_t i = 0; i < inputs; ++i) {
    const std::uint64_t count = r.varint();
    if (count > kMaxCount) throw wire::DecodeError("too many updates");
    std::vector<Update> input;
    input.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t j = 0; j < count; ++j)
      input.push_back(wire::decode_update(read_blob()));
    run.ce_inputs.push_back(std::move(input));
  }
  const std::uint64_t displayed = r.varint();
  if (displayed > kMaxCount) throw wire::DecodeError("too many alerts");
  for (std::uint64_t i = 0; i < displayed; ++i)
    run.displayed.push_back(wire::decode_alert(read_blob()).alert);
  r.expect_done();
  return run;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t run_digest(const SystemRun& run) {
  const auto bytes = encode_system_run(run);
  return fnv1a(bytes);
}

void save_run(const std::filesystem::path& path, const SystemRun& run) {
  const auto framed = wire::frame(encode_system_run(run));
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open())
    throw std::runtime_error("save_run: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(framed.data()),
            static_cast<std::streamsize>(framed.size()));
  if (!out.good())
    throw std::runtime_error("save_run: write failed on " + path.string());
}

SystemRun load_run(const std::filesystem::path& path,
                   ConditionPtr condition) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open())
    throw std::runtime_error("load_run: cannot open " + path.string());
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  const auto payload = cursor.next();
  if (!payload)
    throw wire::DecodeError("load_run: no complete frame in file");
  return decode_system_run(*payload, std::move(condition));
}

}  // namespace rcm::check
