// Human-readable run reports: turn a SystemRun and its property verdicts
// into the text a person debugging an alerting incident wants to read —
// per-replica reception stats, the displayed timeline, each property
// with its evidence (violation reason or witness), rendered with
// original variable names. Used by examples/rcm_audit.
#pragma once

#include <string>

#include "check/properties.hpp"
#include "core/types.hpp"

namespace rcm::check {

/// Report verbosity.
struct ReportOptions {
  /// Cap on listed alerts / witness updates (0 = unlimited).
  std::size_t max_listed = 20;
  /// Include the consistency witness for consistent runs.
  bool show_witness = true;
};

/// Renders the full report. `vars` translates VarIds back to names; ids
/// the registry does not know are printed as "v<i>". The property checks
/// are (re)run inside.
[[nodiscard]] std::string describe_run(const SystemRun& run,
                                       const VariableRegistry& vars,
                                       const ReportOptions& options = {});

}  // namespace rcm::check
