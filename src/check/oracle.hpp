// Brute-force oracles for the property checkers.
//
// These enumerate witness candidates literally from the definitions —
// every subsequence U' of U1 ⊔ U2 for single-variable consistency, every
// (subset choice, interleaving) for multi-variable consistency, every
// interleaving of the unions for multi-variable completeness — with no
// cleverness whatsoever. They are exponential and only usable on tiny
// inputs, which is the point: the test suite runs them against the exact
// polynomial checkers on thousands of small random runs to validate the
// latter's reasoning.
#pragma once

#include <cstddef>
#include <optional>

#include "check/properties.hpp"

namespace rcm::check {

/// Limits for the enumerations; exceeded => nullopt ("too big to decide").
struct OracleLimits {
  std::size_t max_single_var_updates = 20;   ///< 2^n subsequences
  std::size_t max_multi_var_updates = 10;    ///< total across variables
};

/// Consistency by enumeration. Single variable: tries every subsequence
/// of the ordered union. Multi variable: tries every per-variable subset
/// and every interleaving of the chosen subsets.
[[nodiscard]] std::optional<bool> oracle_consistent(
    const SystemRun& run, const OracleLimits& limits = {});

/// Multi-variable completeness by enumerating every interleaving of the
/// full per-variable unions (single-variable inputs are accepted too; the
/// enumeration is then trivial).
[[nodiscard]] std::optional<bool> oracle_complete(
    const SystemRun& run, const OracleLimits& limits = {});

}  // namespace rcm::check
