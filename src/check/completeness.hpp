// Completeness decision (paper §3.1 def. 2, Appendix C def. 2).
//
// Single variable: completeness is Phi(A) = Phi(T(U1 ⊔ U2)) — computed
// directly by running the reference evaluator T over the ordered union of
// everything any replica received.
//
// Multi variable: completeness asks for an interleaving UV of the
// per-variable ordered unions with Phi(A) = Phi(T(UV)) (the definition
// falls back to the single-variable one when |V| = 1, where the
// interleaving is unique). Deciding this requires a search over
// interleavings; we run a depth-first search over stream positions with
// two prunings that keep it tractable at test/bench sizes:
//
//   - an interleaving prefix that generates an alert outside Phi(A) can
//     never become a witness — prune;
//   - the evaluator state is a function of (per-variable positions), so a
//     (positions, covered-alerts) pair that failed once always fails —
//     memoize.
//
// The search is exact but bounded: if the state budget is exhausted the
// verdict is kUnknown (never misreported). The brute-force oracle in
// oracle.hpp cross-validates the search on small inputs.
#pragma once

#include "check/properties.hpp"

namespace rcm::check {

/// Exact single- or multi-variable completeness. `interleaving_budget`
/// bounds the number of DFS states explored in the multi-variable case.
/// When the verdict is kHolds and `witness` is non-null, it receives the
/// witness input: the ordered union (single variable) or the found
/// interleaving UV (multi variable) with Phi(T(witness)) = Phi(A) — so
/// the verdict is independently checkable with the reference evaluator.
[[nodiscard]] Verdict check_complete(const SystemRun& run,
                                     std::size_t interleaving_budget = 200000,
                                     std::vector<Update>* witness = nullptr);

}  // namespace rcm::check
