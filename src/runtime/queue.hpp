// Blocking MPMC queues used as actor inboxes in the threaded runtime and
// as the task queue of runtime::ThreadPool.
//
// Closing a queue wakes all blocked consumers; pop() then drains any
// remaining elements before reporting exhaustion, so no message is lost
// on shutdown (the paper's back links are lossless — so are our queues).
// BoundedBlockingQueue adds a capacity: push() blocks while full, giving
// producers natural backpressure instead of unbounded buffering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rcm::runtime {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues unless the queue is closed; returns whether the element was
  /// accepted.
  bool push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained; nullopt means "closed and empty" (the consumer should exit).
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking variant; nullopt when currently empty (queue may still
  /// be open).
  std::optional<T> try_pop() {
    std::lock_guard lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Rejects future pushes and wakes all blocked consumers.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Bounded MPMC variant: push() blocks while the queue holds `capacity`
/// elements (backpressure), pop() blocks while empty. Close semantics
/// match BlockingQueue: pushes are rejected immediately, consumers drain
/// the remaining elements and then see nullopt.
template <typename T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room or the queue is closed; returns whether
  /// the element was accepted.
  bool push(T value) {
    {
      std::unique_lock lock{mutex_};
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained; nullopt means "closed and empty".
  std::optional<T> pop() {
    std::optional<T> value;
    {
      std::unique_lock lock{mutex_};
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Rejects future pushes and wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rcm::runtime
