// Blocking MPMC queue used as actor inboxes in the threaded runtime.
//
// Closing the queue wakes all blocked consumers; pop() then drains any
// remaining elements before reporting exhaustion, so no message is lost
// on shutdown (the paper's back links are lossless — so are our queues).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rcm::runtime {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues unless the queue is closed; returns whether the element was
  /// accepted.
  bool push(T value) {
    {
      std::lock_guard lock{mutex_};
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained; nullopt means "closed and empty" (the consumer should exit).
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking variant; nullopt when currently empty (queue may still
  /// be open).
  std::optional<T> try_pop() {
    std::lock_guard lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Rejects future pushes and wakes all blocked consumers.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rcm::runtime
