// Threaded monitoring system: the same DM / CE / AD topology as
// sim/system.hpp, but with every node on its own OS thread and real
// queues between them. Interleaving nondeterminism comes from the
// scheduler instead of a seeded event queue, which is exactly what the
// integration tests want to stress: the AD algorithms must uphold their
// properties under *any* interleaving, not just simulated ones.
#pragma once

#include <cstdint>
#include <vector>

#include "core/condition.hpp"
#include "core/filters.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm::runtime {

/// Configuration of a threaded run.
struct ThreadedConfig {
  ConditionPtr condition;
  std::vector<trace::Trace> dm_traces;  ///< one per DM
  std::size_t num_ces = 2;
  double front_loss = 0.0;              ///< per-message drop probability
  FilterKind filter = FilterKind::kAd1;
  std::uint64_t seed = 1;

  /// Wall-clock seconds per trace-time second. 0 replays as fast as
  /// possible (no sleeps) — the default for tests.
  double time_scale = 0.0;
};

/// Runs the threaded system to completion (all traces replayed, all
/// queues drained, all threads joined) and returns the same observables
/// as the simulator, so the property checkers apply unchanged.
[[nodiscard]] sim::RunResult run_threaded(const ThreadedConfig& config);

}  // namespace rcm::runtime
