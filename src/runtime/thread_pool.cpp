#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace rcm::runtime {

ThreadPool::ThreadPool(std::size_t workers, std::size_t queue_capacity)
    : queue_(queue_capacity) {
  const std::size_t n = std::max<std::size_t>(workers, 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  try {
    join();
  } catch (...) {
    // Destructor must not throw; an unjoined pool drops its task
    // exception (still visible via failed_tasks() before destruction).
  }
}

bool ThreadPool::submit(Task task) {
  {
    // Count the task as in flight *before* it becomes visible to a
    // worker, so wait() can never observe a popped-but-uncounted task.
    std::lock_guard lock{mutex_};
    ++in_flight_;
  }
  if (!queue_.push(std::move(task))) {
    std::lock_guard lock{mutex_};
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
    return false;
  }
  return true;
}

void ThreadPool::worker_loop() {
  while (std::optional<Task> task = queue_.pop()) {
    std::exception_ptr error;
    try {
      (*task)();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock{mutex_};
    if (error) {
      ++failed_;
      if (!first_error_) first_error_ = error;
    }
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock lock{mutex_};
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::join() {
  {
    std::lock_guard lock{mutex_};
    if (joined_) {
      // Already joined; still surface an exception captured since the
      // last rethrow (possible only if a previous join was interrupted).
      if (!first_error_) return;
    }
    joined_ = true;
  }
  queue_.close();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  std::lock_guard lock{mutex_};
  if (first_error_)
    std::rethrow_exception(std::exchange(first_error_, nullptr));
}

std::size_t ThreadPool::failed_tasks() const {
  std::lock_guard lock{mutex_};
  return failed_;
}

std::size_t ThreadPool::resolve_jobs(std::size_t n) {
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace rcm::runtime
