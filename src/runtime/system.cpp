#include "runtime/system.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "runtime/channel.hpp"
#include "runtime/queue.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::runtime {
namespace {

void sleep_until_trace_time(double trace_time, double time_scale,
                            std::chrono::steady_clock::time_point start) {
  if (time_scale <= 0.0) return;
  const auto target =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(trace_time * time_scale));
  std::this_thread::sleep_until(target);
}

using Bytes = std::vector<std::uint8_t>;

}  // namespace

sim::RunResult run_threaded(const ThreadedConfig& config) {
  if (!config.condition)
    throw std::invalid_argument("run_threaded: null condition");
  if (config.num_ces == 0)
    throw std::invalid_argument("run_threaded: need at least one CE");
  // One DM per variable (paper §2): two sources minting seqnos for the
  // same variable would break the per-variable counter model.
  {
    std::set<VarId> produced;
    for (const auto& trace : config.dm_traces) {
      std::set<VarId> in_this_trace;
      for (const auto& tu : trace) in_this_trace.insert(tu.update.var);
      for (VarId v : in_this_trace)
        if (!produced.insert(v).second)
          throw std::invalid_argument(
              "run_threaded: variable " + std::to_string(v) +
              " is produced by more than one DM trace");
    }
  }


  util::Rng master{config.seed};

  // Inboxes carry raw framed bytes: every message in the threaded
  // runtime really crosses a serialization boundary, exactly as it would
  // over UDP/TCP sockets.
  auto ad_inbox = std::make_shared<BlockingQueue<Bytes>>();
  std::vector<std::shared_ptr<BlockingQueue<Bytes>>> ce_inboxes;
  for (std::size_t i = 0; i < config.num_ces; ++i)
    ce_inboxes.push_back(std::make_shared<BlockingQueue<Bytes>>());

  // Channels: DM -> CE lossy front links, CE -> AD lossless back links.
  std::uint64_t salt = 0;
  std::vector<std::vector<std::shared_ptr<Channel<Bytes>>>> front;  // [dm][ce]
  front.resize(config.dm_traces.size());
  for (std::size_t d = 0; d < config.dm_traces.size(); ++d)
    for (std::size_t c = 0; c < config.num_ces; ++c)
      front[d].push_back(std::make_shared<Channel<Bytes>>(
          ce_inboxes[c], config.front_loss, master.fork(++salt)));
  std::vector<std::shared_ptr<Channel<Bytes>>> back;
  for (std::size_t c = 0; c < config.num_ces; ++c)
    back.push_back(
        std::make_shared<Channel<Bytes>>(ad_inbox, 0.0, master.fork(++salt)));

  // CE replicas and the AD.
  std::vector<std::unique_ptr<ConditionEvaluator>> evaluators;
  for (std::size_t c = 0; c < config.num_ces; ++c)
    evaluators.push_back(std::make_unique<ConditionEvaluator>(
        config.condition, "CE" + std::to_string(c + 1)));
  AlertDisplayer displayer{
      make_filter(config.filter, config.condition->variables())};

  std::atomic<std::size_t> corrupt_frames{0};

  // Threads.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> dm_threads;
  for (std::size_t d = 0; d < config.dm_traces.size(); ++d) {
    dm_threads.emplace_back([&, d] {
      for (const trace::TimedUpdate& tu : config.dm_traces[d]) {
        sleep_until_trace_time(tu.time, config.time_scale, start);
        const Bytes framed = wire::frame(wire::encode_update(tu.update));
        for (auto& channel : front[d]) channel->send(framed);
      }
    });
  }

  std::vector<std::thread> ce_threads;
  for (std::size_t c = 0; c < config.num_ces; ++c) {
    ce_threads.emplace_back([&, c] {
      wire::FrameCursor cursor;
      while (auto chunk = ce_inboxes[c]->pop()) {
        cursor.feed(*chunk);
        while (auto payload = cursor.next()) {
          Update update;
          try {
            update = wire::decode_update(*payload);
          } catch (const wire::DecodeError&) {
            ++corrupt_frames;
            continue;
          }
          if (auto alert = evaluators[c]->on_update(update)) {
            back[c]->send(wire::frame(wire::encode_alert(
                *alert, wire::AlertEncoding::kFullHistories)));
          }
        }
      }
    });
  }

  std::thread ad_thread{[&] {
    wire::FrameCursor cursor;
    while (auto chunk = ad_inbox->pop()) {
      cursor.feed(*chunk);
      while (auto payload = cursor.next()) {
        try {
          displayer.on_alert(wire::decode_alert(*payload).alert);
        } catch (const wire::DecodeError&) {
          ++corrupt_frames;
        }
      }
    }
  }};

  // Orderly shutdown: producers first, then each consumer tier.
  for (auto& t : dm_threads) t.join();
  for (auto& inbox : ce_inboxes) inbox->close();
  for (auto& t : ce_threads) t.join();
  ad_inbox->close();
  ad_thread.join();

  sim::RunResult result;
  result.displayed = displayer.displayed();
  result.arrived = displayer.arrived();
  for (const auto& ev : evaluators) {
    result.ce_inputs.push_back(ev->received());
    result.ce_outputs.push_back(ev->emitted());
  }
  for (const auto& trace : config.dm_traces)
    result.dm_emitted.push_back(trace::updates_of(trace));
  for (const auto& per_dm : front)
    for (const auto& channel : per_dm)
      result.front_messages_dropped += channel->dropped();
  result.wire_corrupt_frames = corrupt_frames.load();
  return result;
}

}  // namespace rcm::runtime
