// Fixed-size worker pool over a bounded MPMC task queue.
//
// The pool exists to parallelize *independent, deterministic* work —
// swarm runs and Monte-Carlo sweep trials — so its contract is shaped by
// that use:
//
//   - submit() blocks when the queue is full (backpressure; a producer
//     enumerating a million run indices must not materialize a million
//     closures);
//   - wait() is a barrier: it returns once every task submitted so far
//     has finished, and the pool is reusable afterwards — callers
//     process results in deterministic order between batches;
//   - a task that throws does not kill its worker; the first exception
//     is captured and rethrown from the next wait()/join() on the
//     submitting thread, the rest are counted and dropped (independent
//     tasks have no ordering that would make "first" ambiguous across
//     workers — any captured one is reported);
//   - join() closes the queue (draining what was accepted), joins the
//     workers, and rethrows any captured exception. After join(),
//     submit() returns false. The destructor joins but never throws.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/queue.hpp"

namespace rcm::runtime {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` threads (minimum 1). `queue_capacity` bounds the
  /// number of queued-but-unstarted tasks before submit() blocks.
  explicit ThreadPool(std::size_t workers, std::size_t queue_capacity = 256);

  /// Joins without throwing; prefer an explicit join() so task
  /// exceptions are not silently dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is full. Returns false —
  /// and does not run the task — once the pool is closed.
  bool submit(Task task);

  /// Blocks until every task accepted so far has completed, then
  /// rethrows the first captured task exception, if any. The pool
  /// remains open for further submissions.
  void wait();

  /// Closes the queue (subsequent submits are rejected), runs every
  /// already-accepted task to completion, joins the workers, and
  /// rethrows the first captured task exception. Idempotent.
  void join();

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Tasks whose exceptions were captured-or-dropped so far (the first
  /// is rethrown by wait()/join(); the rest only count here).
  [[nodiscard]] std::size_t failed_tasks() const;

  /// `n` if n > 0, else std::thread::hardware_concurrency() (minimum 1).
  /// The shared "--jobs 0 means auto" convention of the CLIs and benches.
  [[nodiscard]] static std::size_t resolve_jobs(std::size_t n);

 private:
  void worker_loop();
  void rethrow_if_failed();

  BoundedBlockingQueue<Task> queue_;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;          // guards the fields below
  std::condition_variable idle_cv_;   // signalled when in_flight_ hits 0
  std::size_t in_flight_ = 0;         // accepted but not yet finished
  std::size_t failed_ = 0;
  std::exception_ptr first_error_;
  bool joined_ = false;
};

}  // namespace rcm::runtime
