// Channel adapters for the threaded runtime, mirroring the paper's link
// model: in-order delivery always (a single FIFO inbox per receiver),
// optional Bernoulli loss on the sender side for UDP-like front links.
#pragma once

#include <memory>
#include <mutex>

#include "runtime/queue.hpp"
#include "util/rng.hpp"

namespace rcm::runtime {

/// Unidirectional channel into a receiver inbox. Thread-safe.
template <typename M>
class Channel {
 public:
  /// `loss` = 0 models the lossless TCP-like back links.
  Channel(std::shared_ptr<BlockingQueue<M>> inbox, double loss,
          util::Rng rng)
      : inbox_(std::move(inbox)), loss_(loss), rng_(rng) {}

  /// Sends a message; it is dropped with the configured probability.
  /// Returns whether the message was actually enqueued.
  bool send(const M& message) {
    if (loss_ > 0.0) {
      std::lock_guard lock{mutex_};
      if (rng_.bernoulli(loss_)) {
        ++dropped_;
        return false;
      }
    }
    return inbox_->push(message);
  }

  [[nodiscard]] std::size_t dropped() const {
    std::lock_guard lock{mutex_};
    return dropped_;
  }

 private:
  std::shared_ptr<BlockingQueue<M>> inbox_;
  double loss_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  std::size_t dropped_ = 0;
};

}  // namespace rcm::runtime
