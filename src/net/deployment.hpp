// Socket-deployed monitoring system: the full DM -> CE -> AD pipeline
// over real loopback sockets, one OS thread per node.
//
//   - front links: UDP datagrams (one framed update per datagram), with
//     Bernoulli loss injected at the sender to model the paper's lossy
//     datagram links (loopback UDP itself does not drop);
//   - back links: one TCP stream per CE carrying framed alerts; stream
//     framing + CRC handle TCP's byte-stream semantics;
//   - end-of-stream: each DM sends an END datagram (tagged with the DM's
//     index, so duplicates are idempotent) to every CE; a CE finishes
//     when every *distinct* DM has said END, then half-closes its TCP
//     stream so the AD sees EOF. A CE that starts — or, in the service,
//     restarts — after some DM already said END can therefore never hang
//     on a re-sent END, and a CE whose END datagrams were genuinely lost
//     finishes via a configurable idle timeout that is surfaced in
//     RunResult::ce_end_timeouts instead of blocking forever.
//
// Produces the same observables as the simulator and threaded runtime,
// so the property checkers apply unchanged to a run that crossed the
// kernel's network stack.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/condition.hpp"
#include "core/filters.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm::net {

/// Configuration of a networked run.
struct NetworkConfig {
  ConditionPtr condition;
  std::vector<trace::Trace> dm_traces;
  std::size_t num_ces = 2;
  double front_loss = 0.0;  ///< sender-side injected drop probability
  FilterKind filter = FilterKind::kAd1;
  std::uint64_t seed = 1;
  /// Wall-clock seconds per trace-time second; 0 = replay at full speed.
  double time_scale = 0.0;
  /// How long a CE waits with no traffic before concluding the END
  /// markers it is missing will never arrive (surfaced as
  /// RunResult::ce_end_timeouts, never a hang). Must be > 0.
  double end_timeout_seconds = 5.0;
};

/// Framed datagram payload marking end-of-stream for DM `dm_index`.
/// Exposed so the service's feeders speak the same ingest protocol.
[[nodiscard]] std::vector<std::uint8_t> encode_end_marker(
    std::size_t dm_index);

/// Decodes an END marker payload; nullopt if `payload` is not one.
[[nodiscard]] std::optional<std::size_t> decode_end_marker(
    std::span<const std::uint8_t> payload);

/// Runs the networked system to completion (all traces sent, all TCP
/// streams drained, all threads joined). Throws std::invalid_argument on
/// malformed configs and std::system_error on socket failures.
[[nodiscard]] sim::RunResult run_networked(const NetworkConfig& config);

}  // namespace rcm::net
