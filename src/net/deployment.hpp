// Socket-deployed monitoring system: the full DM -> CE -> AD pipeline
// over real loopback sockets, one OS thread per node.
//
//   - front links: UDP datagrams (one framed update per datagram), with
//     Bernoulli loss injected at the sender to model the paper's lossy
//     datagram links (loopback UDP itself does not drop);
//   - back links: one TCP stream per CE carrying framed alerts; stream
//     framing + CRC handle TCP's byte-stream semantics;
//   - end-of-stream: each DM sends an END datagram to every CE (never
//     subject to injected loss); a CE finishes when every DM has said
//     END, then half-closes its TCP stream so the AD sees EOF.
//
// Produces the same observables as the simulator and threaded runtime,
// so the property checkers apply unchanged to a run that crossed the
// kernel's network stack.
#pragma once

#include <cstdint>
#include <vector>

#include "core/condition.hpp"
#include "core/filters.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm::net {

/// Configuration of a networked run.
struct NetworkConfig {
  ConditionPtr condition;
  std::vector<trace::Trace> dm_traces;
  std::size_t num_ces = 2;
  double front_loss = 0.0;  ///< sender-side injected drop probability
  FilterKind filter = FilterKind::kAd1;
  std::uint64_t seed = 1;
  /// Wall-clock seconds per trace-time second; 0 = replay at full speed.
  double time_scale = 0.0;
};

/// Runs the networked system to completion (all traces sent, all TCP
/// streams drained, all threads joined). Throws std::invalid_argument on
/// malformed configs and std::system_error on socket failures.
[[nodiscard]] sim::RunResult run_networked(const NetworkConfig& config);

}  // namespace rcm::net
