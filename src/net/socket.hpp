// Thin RAII wrappers over POSIX loopback sockets.
//
// This substrate deploys the monitoring pipeline over real kernel
// sockets on 127.0.0.1: UDP datagrams for the front links (cheap,
// connectionless, multicast-like — the paper's datagram argument) and
// TCP streams for the back links (connection-oriented, lossless — the
// paper's TCP argument). Loopback-only by design: the goal is a real
// network data path for integration testing, not a deployment toolkit.
//
// All operations throw std::system_error on OS errors; receive paths
// take millisecond timeouts so shutdown flags can be polled.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rcm::net {

/// Owning file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle();
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// UDP socket bound to a loopback port.
class UdpSocket {
 public:
  /// Binds to 127.0.0.1:0 (ephemeral).
  UdpSocket() : UdpSocket(0) {}

  /// Binds to 127.0.0.1:`port` (0 = ephemeral). A restarting service
  /// replica uses this to reclaim the port its producers already know;
  /// throws std::system_error if the port is taken.
  explicit UdpSocket(std::uint16_t port);

  /// The port the kernel assigned.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Sends one datagram to 127.0.0.1:`port`.
  void send_to(std::uint16_t port, std::span<const std::uint8_t> bytes);

  /// Receives one datagram, waiting up to `timeout`; nullopt on timeout.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive(
      std::chrono::milliseconds timeout);

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

class TcpStream;

/// Listening TCP socket on a loopback port (ephemeral by default).
class TcpListener {
 public:
  TcpListener();

  /// Binds the given fixed port (0 = ephemeral, same as the default
  /// constructor). Throws on bind failure (port already in use).
  explicit TcpListener(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection, waiting up to `timeout`; nullopt on timeout.
  [[nodiscard]] std::optional<TcpStream> accept(
      std::chrono::milliseconds timeout);

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// Connected TCP stream.
class TcpStream {
 public:
  /// Connects to 127.0.0.1:`port`.
  static TcpStream connect(std::uint16_t port);

  /// Writes the whole buffer (looping over partial writes).
  void write_all(std::span<const std::uint8_t> bytes);

  /// Reads up to 64 KiB, waiting up to `timeout`. Returns nullopt on
  /// timeout and an empty vector on orderly EOF.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_some(
      std::chrono::milliseconds timeout);

  /// Switches the socket in or out of non-blocking mode (for
  /// readiness-driven event loops that poll() the raw fd).
  void set_nonblocking(bool enabled);

  /// Writes as much as the kernel will take without blocking. Returns
  /// the byte count written — 0 when the send buffer is full (EAGAIN,
  /// meaningful only in non-blocking mode). Throws on a broken peer.
  [[nodiscard]] std::size_t write_some(std::span<const std::uint8_t> bytes);

  /// Reads whatever is already buffered without blocking. Returns
  /// nullopt when nothing is available (EAGAIN) and an empty vector on
  /// orderly EOF.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_available();

  /// Half-closes the write side (sends FIN; the peer sees EOF).
  void shutdown_write();

  /// The raw fd, for poll()-style readiness loops. Ownership stays here.
  [[nodiscard]] int native_handle() const noexcept { return fd_.get(); }

 private:
  friend class TcpListener;
  explicit TcpStream(FdHandle fd) noexcept : fd_(std::move(fd)) {}
  FdHandle fd_;
};

/// Self-pipe for waking a poll()-based event loop from another thread.
class WakePipe {
 public:
  WakePipe();

  /// Makes the read end readable (idempotent while undrained; safe from
  /// any thread, async-signal-safe write).
  void wake() noexcept;

  /// Consumes all pending wake bytes.
  void drain() noexcept;

  [[nodiscard]] int read_fd() const noexcept { return read_.get(); }

 private:
  FdHandle read_;
  FdHandle write_;
};

}  // namespace rcm::net
