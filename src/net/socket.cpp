#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace rcm::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

/// Waits until the fd is readable or the timeout elapses.
bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd pfd{fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc < 0) {
    if (errno == EINTR) return false;
    throw_errno("poll");
  }
  return rc > 0;
}

}  // namespace

FdHandle::~FdHandle() { reset(); }

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.release();
  }
  return *this;
}

void FdHandle::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = FdHandle{::socket(AF_INET, SOCK_DGRAM, 0)};
  if (!fd_.valid()) throw_errno("socket(UDP)");
  // Full-speed trace replay can burst thousands of datagrams before the
  // receiver thread is scheduled; a deep receive buffer keeps loopback
  // delivery effectively lossless so injected loss stays the only loss.
  const int rcvbuf = 4 << 20;
  (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                     sizeof(rcvbuf));
  const sockaddr_in addr = loopback(port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0)
    throw_errno("bind(UDP)");
  port_ = bound_port(fd_.get());
}

void UdpSocket::send_to(std::uint16_t port,
                        std::span<const std::uint8_t> bytes) {
  const sockaddr_in addr = loopback(port);
  const ssize_t sent =
      ::sendto(fd_.get(), bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) throw_errno("sendto");
  if (static_cast<std::size_t>(sent) != bytes.size())
    throw std::system_error(EMSGSIZE, std::generic_category(),
                            "sendto: short datagram write");
}

std::optional<std::vector<std::uint8_t>> UdpSocket::receive(
    std::chrono::milliseconds timeout) {
  if (!wait_readable(fd_.get(), timeout)) return std::nullopt;
  std::vector<std::uint8_t> buf(65536);
  const ssize_t n = ::recvfrom(fd_.get(), buf.data(), buf.size(), 0,
                               nullptr, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("recvfrom");
  }
  buf.resize(static_cast<std::size_t>(n));
  return buf;
}

TcpListener::TcpListener() : TcpListener(0) {}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = FdHandle{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd_.valid()) throw_errno("socket(TCP)");
  const int one = 1;
  (void)::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = loopback(port);
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0)
    throw_errno("bind(TCP)");
  if (::listen(fd_.get(), 16) < 0) throw_errno("listen");
  port_ = bound_port(fd_.get());
}

std::optional<TcpStream> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  if (!wait_readable(fd_.get(), timeout)) return std::nullopt;
  FdHandle conn{::accept(fd_.get(), nullptr, nullptr)};
  if (!conn.valid()) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("accept");
  }
  return TcpStream{std::move(conn)};
}

TcpStream TcpStream::connect(std::uint16_t port) {
  FdHandle fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(TCP client)");
  const sockaddr_in addr = loopback(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0)
    throw_errno("connect");
  return TcpStream{std::move(fd)};
}

void TcpStream::write_all(std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::optional<std::vector<std::uint8_t>> TcpStream::read_some(
    std::chrono::milliseconds timeout) {
  if (!wait_readable(fd_.get(), timeout)) return std::nullopt;
  std::vector<std::uint8_t> buf(65536);
  const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), 0);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("recv");
  }
  buf.resize(static_cast<std::size_t>(n));  // empty == orderly EOF
  return buf;
}

void TcpStream::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd_.get(), F_SETFL, wanted) < 0)
    throw_errno("fcntl(F_SETFL)");
}

std::size_t TcpStream::write_some(std::span<const std::uint8_t> bytes) {
  while (true) {
    const ssize_t n =
        ::send(fd_.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("send");
  }
}

std::optional<std::vector<std::uint8_t>> TcpStream::read_available() {
  std::vector<std::uint8_t> buf(65536);
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), MSG_DONTWAIT);
    if (n >= 0) {
      buf.resize(static_cast<std::size_t>(n));  // empty == orderly EOF
      return buf;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("recv");
  }
}

void TcpStream::shutdown_write() {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0) throw_errno("pipe2");
  read_ = FdHandle{fds[0]};
  write_ = FdHandle{fds[1]};
}

void WakePipe::wake() noexcept {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees the loop will wake; EAGAIN is fine.
  (void)::write(write_.get(), &byte, 1);
}

void WakePipe::drain() noexcept {
  std::uint8_t buf[256];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace rcm::net
