#include "net/deployment.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/queue.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::net {
namespace {

using namespace std::chrono_literals;

// END-of-stream datagram payload prefix ("END"), followed by a varint DM
// index so a receiver counts *distinct* finished DMs, not END datagrams.
constexpr std::uint8_t kEndMagic[3] = {0x45, 0x4E, 0x44};

void sleep_until_trace_time(double trace_time, double time_scale,
                            std::chrono::steady_clock::time_point start) {
  if (time_scale <= 0.0) return;
  std::this_thread::sleep_until(
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(trace_time * time_scale)));
}

}  // namespace

std::vector<std::uint8_t> encode_end_marker(std::size_t dm_index) {
  wire::Writer w;
  for (std::uint8_t b : kEndMagic) w.u8(b);
  w.varint(dm_index);
  return w.take();
}

std::optional<std::size_t> decode_end_marker(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < sizeof(kEndMagic)) return std::nullopt;
  for (std::size_t i = 0; i < sizeof(kEndMagic); ++i)
    if (payload[i] != kEndMagic[i]) return std::nullopt;
  try {
    wire::Reader r{payload.subspan(sizeof(kEndMagic))};
    const std::uint64_t dm = r.varint();
    r.expect_done();
    return static_cast<std::size_t>(dm);
  } catch (const wire::DecodeError&) {
    return std::nullopt;
  }
}

sim::RunResult run_networked(const NetworkConfig& config) {
  if (!config.condition)
    throw std::invalid_argument("run_networked: null condition");
  if (config.num_ces == 0)
    throw std::invalid_argument("run_networked: need at least one CE");
  if (config.dm_traces.empty())
    throw std::invalid_argument("run_networked: need at least one DM");
  if (!(config.end_timeout_seconds > 0.0))
    throw std::invalid_argument("run_networked: end timeout must be > 0");
  // One DM per variable (paper §2): two sources minting seqnos for the
  // same variable would break the per-variable counter model.
  {
    std::set<VarId> produced;
    for (const auto& trace : config.dm_traces) {
      std::set<VarId> in_this_trace;
      for (const auto& tu : trace) in_this_trace.insert(tu.update.var);
      for (VarId v : in_this_trace)
        if (!produced.insert(v).second)
          throw std::invalid_argument(
              "run_networked: variable " + std::to_string(v) +
              " is produced by more than one DM trace");
    }
  }


  util::Rng master{config.seed};

  // --- sockets, created up front so every port is known ------------------
  TcpListener ad_listener;
  std::vector<std::unique_ptr<UdpSocket>> ce_sockets;
  for (std::size_t c = 0; c < config.num_ces; ++c)
    ce_sockets.push_back(std::make_unique<UdpSocket>());

  // --- shared state -------------------------------------------------------
  std::vector<std::unique_ptr<ConditionEvaluator>> evaluators;
  for (std::size_t c = 0; c < config.num_ces; ++c)
    evaluators.push_back(std::make_unique<ConditionEvaluator>(
        config.condition, "CE" + std::to_string(c + 1)));
  AlertDisplayer displayer{
      make_filter(config.filter, config.condition->variables())};
  runtime::BlockingQueue<Alert> ad_queue;
  std::atomic<std::size_t> front_drops{0};
  std::atomic<std::size_t> corrupt_frames{0};
  std::atomic<std::size_t> end_timeouts{0};

  // --- CE threads: UDP receive -> evaluate -> TCP send --------------------
  std::vector<std::thread> ce_threads;
  for (std::size_t c = 0; c < config.num_ces; ++c) {
    ce_threads.emplace_back([&, c] {
      TcpStream to_ad = TcpStream::connect(ad_listener.port());
      wire::FrameCursor cursor;
      // Per-DM END markers: a set, not a counter, so a duplicated or
      // re-sent END can never finish the CE early, and a CE that joins
      // (or in the service, restarts) late still terminates on the
      // re-sent markers. If the markers are genuinely lost — UDP gives
      // no delivery guarantee even on loopback — the idle timeout turns
      // the would-be hang into a finish that the caller can see in
      // RunResult::ce_end_timeouts.
      std::set<std::size_t> dm_ends;
      const auto end_timeout =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config.end_timeout_seconds));
      auto last_traffic = std::chrono::steady_clock::now();
      while (dm_ends.size() < config.dm_traces.size()) {
        const auto datagram = ce_sockets[c]->receive(100ms);
        if (!datagram) {
          if (std::chrono::steady_clock::now() - last_traffic >
              end_timeout) {
            ++end_timeouts;
            RCM_COUNT("net.ce.end_timeouts");
            break;
          }
          continue;
        }
        last_traffic = std::chrono::steady_clock::now();
        cursor.feed(*datagram);
        while (auto payload = cursor.next()) {
          if (auto dm = decode_end_marker(*payload)) {
            if (*dm < config.dm_traces.size()) dm_ends.insert(*dm);
            continue;
          }
          wire::UpdateMessage msg;
          try {
            msg = wire::decode_update_message(*payload);
          } catch (const wire::DecodeError&) {
            ++corrupt_frames;
            continue;
          }
          // Adopt the sender's trace context for this hop; the alert (if
          // any) inherits the trace id inside the evaluator.
          obs::trace::ContextScope tscope{msg.trace};
          RCM_TRACE_SPAN(ingest_span, "ce.ingest");
          ingest_span.var(msg.update.var).seq(msg.update.seqno);
          if (auto alert = evaluators[c]->on_update(msg.update)) {
            RCM_TRACE_SPAN(fanout_span, "ce.alert_send");
            to_ad.write_all(wire::frame(wire::encode_alert(
                *alert, wire::AlertEncoding::kFullHistories)));
          }
        }
      }
      to_ad.shutdown_write();
      // Keep the stream open until the reader drains it; destroying the
      // socket here is fine — FIN has been sent and data is queued in
      // the kernel, which delivers it regardless.
    });
  }

  // --- AD: accept one stream per CE, one reader thread each ---------------
  std::vector<TcpStream> streams;
  streams.reserve(config.num_ces);
  const auto accept_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (streams.size() < config.num_ces) {
    if (std::chrono::steady_clock::now() > accept_deadline)
      throw std::runtime_error("run_networked: CEs failed to connect");
    if (auto stream = ad_listener.accept(100ms))
      streams.push_back(std::move(*stream));
  }

  std::vector<std::thread> reader_threads;
  for (TcpStream& stream : streams) {
    reader_threads.emplace_back([&stream, &ad_queue, &corrupt_frames] {
      wire::FrameCursor cursor;
      while (true) {
        const auto chunk = stream.read_some(200ms);
        if (!chunk) continue;       // timeout: poll again
        if (chunk->empty()) break;  // EOF: CE is done
        cursor.feed(*chunk);
        while (auto payload = cursor.next()) {
          try {
            (void)ad_queue.push(wire::decode_alert(*payload).alert);
          } catch (const wire::DecodeError&) {
            ++corrupt_frames;
          }
        }
      }
    });
  }

  std::thread ad_thread{[&] {
    while (auto alert = ad_queue.pop()) displayer.on_alert(*alert);
  }};

  // --- DM threads: replay traces over UDP ---------------------------------
  // Fork every DM's loss stream up front: Rng::fork mutates the parent,
  // so it must not be called concurrently from the DM threads.
  std::vector<util::Rng> dm_rngs;
  for (std::size_t d = 0; d < config.dm_traces.size(); ++d)
    dm_rngs.push_back(master.fork(0xD0 + d));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> dm_threads;
  for (std::size_t d = 0; d < config.dm_traces.size(); ++d) {
    dm_threads.emplace_back([&, d] {
      UdpSocket sender;
      util::Rng rng = dm_rngs[d];
      for (const trace::TimedUpdate& tu : config.dm_traces[d]) {
        sleep_until_trace_time(tu.time, config.time_scale, start);
        // Allocate the per-update trace context here, at the source: a
        // deterministic function of (var, seqno), carried on the wire.
        const obs::trace::TraceContext ctx{
            obs::trace::derive_trace_id(tu.update.var, tu.update.seqno), 0};
        obs::trace::ContextScope tscope{ctx};
        RCM_TRACE_SPAN(emit_span, "dm.emit");
        emit_span.var(tu.update.var).seq(tu.update.seqno);
        const auto framed = wire::frame(wire::encode_update(
            tu.update, obs::trace::current_context()));
        for (auto& ce_socket : ce_sockets) {
          if (rng.bernoulli(config.front_loss)) {
            ++front_drops;
            continue;  // injected datagram loss
          }
          sender.send_to(ce_socket->port(), framed);
        }
      }
      const auto end_frame = wire::frame(encode_end_marker(d));
      for (auto& ce_socket : ce_sockets)
        sender.send_to(ce_socket->port(), end_frame);
    });
  }

  // --- orderly shutdown ----------------------------------------------------
  for (auto& t : dm_threads) t.join();
  for (auto& t : ce_threads) t.join();
  for (auto& t : reader_threads) t.join();
  ad_queue.close();
  ad_thread.join();

  sim::RunResult result;
  result.displayed = displayer.displayed();
  result.arrived = displayer.arrived();
  for (const auto& ev : evaluators) {
    result.ce_inputs.push_back(ev->received());
    result.ce_outputs.push_back(ev->emitted());
  }
  for (const auto& trace : config.dm_traces)
    result.dm_emitted.push_back(trace::updates_of(trace));
  result.front_messages_dropped = front_drops.load();
  result.wire_corrupt_frames = corrupt_frames.load();
  result.ce_end_timeouts = end_timeouts.load();
  return result;
}

}  // namespace rcm::net
